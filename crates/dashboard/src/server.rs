//! A minimal static-file HTTP server for viewing the dashboard.
//!
//! Single-purpose by design: GET only, rooted at the dashboard directory,
//! path-traversal safe, one thread per connection. This is the "explore the
//! dashboard from a browser" affordance, not a production web server — but
//! it is hardened against the accidents browsers inflict: concurrent
//! connections are bounded by a semaphore (excess requests are shed with
//! `503` + `Retry-After` instead of spawning unbounded threads), and every
//! socket carries read/write timeouts so a stalled client cannot pin a
//! handler thread forever.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Connection-handling limits for [`serve_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Maximum concurrently served connections; excess requests receive
    /// `503 Service Unavailable` with a `Retry-After` hint.
    pub max_connections: usize,
    /// Per-socket read and write timeout: a client that stops sending or
    /// consuming releases its handler thread after this long.
    pub io_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 32,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// A held slot in the connection semaphore; dropping it releases the slot.
struct ConnPermit {
    active: Arc<AtomicUsize>,
}

impl ConnPermit {
    fn try_acquire(active: &Arc<AtomicUsize>, limit: usize) -> Option<ConnPermit> {
        let mut cur = active.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return None;
            }
            match active.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    return Some(ConnPermit {
                        active: Arc::clone(active),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server; dropping it (or calling [`ServerHandle::stop`]) shuts it
/// down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections currently holding a semaphore slot. The permit is
    /// acquired on the accept thread, so once a client's connection has been
    /// accepted it is counted here — tests synchronize on this instead of
    /// sleeping and hoping the accept loop has caught up.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Signal shutdown and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown();
        }
    }
}

/// Serve `root` on `127.0.0.1:port` (0 = ephemeral) in a background thread,
/// with default limits ([`ServeOptions::default`]).
pub fn serve(root: impl Into<PathBuf>, port: u16) -> std::io::Result<ServerHandle> {
    serve_with(root, port, ServeOptions::default())
}

/// [`serve`] with explicit connection limits.
pub fn serve_with(
    root: impl Into<PathBuf>,
    port: u16,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let root = root.into();
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let active = Arc::new(AtomicUsize::new(0));
    let active2 = Arc::clone(&active);
    let join = std::thread::Builder::new()
        .name("schedflow-dashboard".to_owned())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = stream.set_read_timeout(Some(options.io_timeout));
                    let _ = stream.set_write_timeout(Some(options.io_timeout));
                    match ConnPermit::try_acquire(&active2, options.max_connections.max(1)) {
                        Some(permit) => {
                            let root = root.clone();
                            std::thread::spawn(move || {
                                let _ = handle(stream, &root);
                                drop(permit);
                            });
                        }
                        // Overload: shed on the accept thread — a bounded,
                        // header-only write — rather than queueing work.
                        None => {
                            let _ = respond_overloaded(&mut stream);
                        }
                    }
                }
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        active,
        join: Some(join),
    })
}

fn content_type(path: &Path) -> &'static str {
    match path.extension().and_then(|e| e.to_str()) {
        Some("html") => "text/html; charset=utf-8",
        Some("svg") => "image/svg+xml",
        Some("css") => "text/css",
        Some("js") => "application/javascript",
        Some("json") => "application/json",
        Some("csv") | Some("txt") => "text/plain; charset=utf-8",
        Some("png") => "image/png",
        _ => "application/octet-stream",
    }
}

/// Resolve a request path under `root`, rejecting traversal.
fn resolve(root: &Path, raw: &str) -> Option<PathBuf> {
    let path = raw.split(['?', '#']).next().unwrap_or("/");
    let rel = path.trim_start_matches('/');
    let rel = if rel.is_empty() { "index.html" } else { rel };
    let candidate = PathBuf::from(rel);
    if candidate
        .components()
        .any(|c| !matches!(c, Component::Normal(_)))
    {
        return None;
    }
    let full = root.join(candidate);
    let full = if full.is_dir() {
        full.join("index.html")
    } else {
        full
    };
    full.exists().then_some(full)
}

fn handle(mut stream: TcpStream, root: &Path) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");

    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", b"method not allowed");
    }
    match resolve(root, path) {
        Some(file) => {
            let body = std::fs::read(&file)?;
            // Serve the verified payload: the durable store's checksum
            // footer is transport framing, not page content.
            let payload = schedflow_dataflow::store::payload_of(&body);
            respond(&mut stream, 200, content_type(&file), payload)
        }
        None => respond(&mut stream, 404, "text/plain", b"not found"),
    }
}

/// `503 Service Unavailable` with a retry hint, written on the accept
/// thread when the connection semaphore is exhausted.
fn respond_overloaded(stream: &mut TcpStream) -> std::io::Result<()> {
    let body = b"server overloaded, retry shortly";
    write!(
        stream,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    Ok(())
}

fn respond(stream: &mut TcpStream, status: u16, ctype: &str, body: &[u8]) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    fn site() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-server-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(dir.join("panels")).unwrap();
        std::fs::write(dir.join("index.html"), "<html>dash</html>").unwrap();
        std::fs::write(dir.join("panels/waits.html"), "<html>waits</html>").unwrap();
        dir
    }

    #[test]
    fn serves_index_and_panels() {
        let dir = site();
        let server = serve(&dir, 0).unwrap();
        let (status, body) = get(server.addr(), "/");
        assert_eq!(status, 200);
        assert!(body.contains("dash"));
        let (status, body) = get(server.addr(), "/panels/waits.html");
        assert_eq!(status, 200);
        assert!(body.contains("waits"));
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_404() {
        let dir = site();
        let server = serve(&dir, 0).unwrap();
        let (status, _) = get(server.addr(), "/nope.html");
        assert_eq!(status, 404);
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn path_traversal_rejected() {
        let dir = site();
        let server = serve(&dir, 0).unwrap();
        let (status, _) = get(server.addr(), "/../../../etc/passwd");
        assert_eq!(status, 404);
        let (status, _) = get(server.addr(), "/panels/../../secret");
        assert_eq!(status, 404);
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_get_rejected() {
        let dir = site();
        let server = serve(&dir, 0).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 405"));
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_is_shed_with_503_and_retry_after() {
        let dir = site();
        let server = serve_with(
            &dir,
            0,
            ServeOptions {
                max_connections: 1,
                io_timeout: Duration::from_secs(2),
            },
        )
        .unwrap();
        // Occupy the single slot with a connection that never sends its
        // request; the handler thread holds the permit until its read
        // timeout fires. Wait until the accept thread has actually taken the
        // permit — a fixed sleep raced the accept loop and flaked under
        // load — before issuing the request that must be shed.
        let slow = TcpStream::connect(server.addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "accept thread never took the slow connection's permit"
            );
            std::thread::yield_now();
        }
        // The shed path responds on accept without reading the request, so
        // read the 503 without writing one: bytes the server receives after
        // it closes would turn into a RST that discards the response.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "got: {buf}");
        assert!(buf.contains("Retry-After: 1"));
        drop(slow);
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_footer_is_stripped_from_served_pages() {
        let dir = site();
        schedflow_dataflow::store::ambient()
            .write_atomic(&dir.join("durable.html"), b"<html>durable</html>")
            .unwrap();
        let server = serve(&dir, 0).unwrap();
        let (status, body) = get(server.addr(), "/durable.html");
        assert_eq!(status, 200);
        assert!(body.contains("durable"));
        assert!(!body.contains("SFCK1"), "footer must not reach the client");
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_types() {
        assert_eq!(
            content_type(Path::new("a.html")),
            "text/html; charset=utf-8"
        );
        assert_eq!(content_type(Path::new("a.svg")), "image/svg+xml");
        assert_eq!(content_type(Path::new("a.bin")), "application/octet-stream");
    }
}
