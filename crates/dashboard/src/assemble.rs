//! Dashboard assembly: consolidating all plots and insights into one
//! navigable site.
//!
//! Reproduces the paper's Dash stage: "consolidates all generated plots into
//! an interactive dashboard …, enabling users to explore and filter results
//! from a single unified interface." Output is a static site — an index page
//! with a sidebar of panels, each panel an interactive chart HTML plus the
//! analyst's commentary — served by [`crate::server`] or opened directly.

use crate::markdown;
use std::path::{Path, PathBuf};

/// One dashboard panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// File-name-safe identifier.
    pub id: String,
    /// Human title shown in the sidebar.
    pub title: String,
    /// Self-contained chart HTML (from `schedflow-charts::to_html`).
    pub chart_html: String,
    /// Analyst commentary in Markdown (empty = none).
    pub insight_md: String,
    /// Logical group for the sidebar ("Frontier", "Andes", "Policy…").
    pub group: String,
}

impl Panel {
    /// A placeholder panel standing in for a chart whose producing task
    /// failed: the dashboard keeps its full tab structure under partial
    /// upstream failure, each missing chart explaining why it is missing
    /// instead of silently disappearing from the sidebar.
    pub fn placeholder(id: &str, title: &str, group: &str, reason: &str) -> Panel {
        Panel {
            id: id.to_owned(),
            title: title.to_owned(),
            chart_html: format!(
                "<div class=\"placeholder\" style=\"max-width:860px;padding:24px;\
                 background:#fff3cd;border:1px solid #ffc107;border-radius:6px\">\
                 <h3 style=\"margin-top:0\">Chart unavailable</h3>\
                 <p>This panel could not be rendered: {}</p>\
                 <p>Re-run the workflow (with <code>--resume</code>) to fill it in.</p>\
                 </div>",
                html_escape(reason)
            ),
            insight_md: String::new(),
            group: group.to_owned(),
        }
    }

    /// True when this panel is a degraded stand-in, not a real chart.
    pub fn is_placeholder(&self) -> bool {
        self.chart_html.contains("class=\"placeholder\"")
    }
}

/// The dashboard under construction.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    pub title: String,
    pub panels: Vec<Panel>,
}

impl Dashboard {
    pub fn new(title: &str) -> Self {
        Dashboard {
            title: title.to_owned(),
            panels: Vec::new(),
        }
    }

    /// Add a panel; ids must be unique and path-safe.
    pub fn add_panel(&mut self, panel: Panel) -> Result<(), String> {
        if panel.id.is_empty()
            || !panel
                .id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("panel id {:?} is not path-safe", panel.id));
        }
        if self.panels.iter().any(|p| p.id == panel.id) {
            return Err(format!("duplicate panel id {:?}", panel.id));
        }
        self.panels.push(panel);
        Ok(())
    }

    /// Distinct groups in insertion order.
    pub fn groups(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.panels {
            if !seen.contains(&p.group.as_str()) {
                seen.push(p.group.as_str());
            }
        }
        seen
    }

    /// Write the static site into `dir`: `index.html` + `panels/<id>.html`.
    /// Every page lands through the durable store's atomic, checksummed
    /// write, so a crash mid-assembly never leaves half a dashboard.
    pub fn write(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let store = schedflow_dataflow::store::ambient();
        let panels_dir = dir.join("panels");
        std::fs::create_dir_all(&panels_dir)?;
        let mut written = Vec::new();

        for p in &self.panels {
            let path = panels_dir.join(format!("{}.html", p.id));
            let insight_html = if p.insight_md.is_empty() {
                String::new()
            } else {
                format!(
                    "<section class=\"insight\"><h3>Automated insight</h3>{}</section>",
                    markdown::to_html(&p.insight_md)
                )
            };
            // The chart HTML is already a full document; embed its body via
            // an iframe-free composition: store the chart file separately and
            // wrap with the insight below it.
            let page = format!(
                "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>{t}</title>\
                 <style>body{{font-family:Helvetica,Arial,sans-serif;margin:16px}}\
                 .insight{{max-width:860px;background:#f6f8fa;border-left:4px solid #0072B2;\
                 padding:4px 16px;margin-top:12px}}</style></head><body>\
                 <h2>{t}</h2>{chart}{insight}</body></html>",
                t = html_escape(&p.title),
                chart = extract_body(&p.chart_html),
                insight = insight_html
            );
            store.write_atomic(&path, page.as_bytes())?;
            written.push(path);
        }

        let index = self.index_html();
        let index_path = dir.join("index.html");
        store.write_atomic(&index_path, index.as_bytes())?;
        written.push(index_path);
        Ok(written)
    }

    fn index_html(&self) -> String {
        let mut sidebar = String::new();
        for group in self.groups() {
            sidebar.push_str(&format!("<h3>{}</h3><ul>", html_escape(group)));
            for p in self.panels.iter().filter(|p| p.group == group) {
                sidebar.push_str(&format!(
                    "<li><a href=\"panels/{id}.html\" target=\"view\" data-title=\"{t}\">{t}</a></li>",
                    id = p.id,
                    t = html_escape(&p.title)
                ));
            }
            sidebar.push_str("</ul>");
        }
        let first = self
            .panels
            .first()
            .map(|p| format!("panels/{}.html", p.id))
            .unwrap_or_default();
        format!(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>{t}</title>\
             <style>body{{margin:0;font-family:Helvetica,Arial,sans-serif;display:flex;height:100vh}}\
             nav{{width:260px;overflow-y:auto;background:#1d2733;color:#eee;padding:12px}}\
             nav h3{{margin:14px 0 4px;font-size:13px;text-transform:uppercase;color:#8fa3b8}}\
             nav ul{{list-style:none;margin:0;padding:0}}\
             nav a{{display:block;color:#cfe2f3;text-decoration:none;padding:4px 8px;border-radius:4px;font-size:14px}}\
             nav a:hover{{background:#31415a}}\
             nav input{{width:100%;box-sizing:border-box;margin-bottom:8px;padding:6px}}\
             iframe{{flex:1;border:none}}</style></head><body>\
             <nav><h2>{t}</h2><input id=\"filter\" placeholder=\"filter panels…\"/>{sidebar}</nav>\
             <iframe name=\"view\" src=\"{first}\"></iframe>\
             <script>document.getElementById('filter').addEventListener('input',function(){{\
             var q=this.value.toLowerCase();\
             document.querySelectorAll('nav li').forEach(function(li){{\
             li.style.display=li.textContent.toLowerCase().includes(q)?'':'none';}});}});\
             </script></body></html>",
            t = html_escape(&self.title),
            sidebar = sidebar,
            first = first
        )
    }
}

/// Write one standalone panel page with the dashboard chrome, outside the
/// [`Dashboard::write`] batch — for tabs whose content only exists after the
/// run finishes (the sidebar entry is added as a normal panel during the run;
/// this call then replaces the page body in place).
pub fn write_panel_page(
    dir: &Path,
    id: &str,
    title: &str,
    body_html: &str,
) -> std::io::Result<PathBuf> {
    if id.is_empty()
        || !id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("panel id {id:?} is not path-safe"),
        ));
    }
    let panels_dir = dir.join("panels");
    std::fs::create_dir_all(&panels_dir)?;
    let page = format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>{t}</title>\
         <style>body{{font-family:Helvetica,Arial,sans-serif;margin:16px}}\
         table{{border-collapse:collapse;font-size:14px}}\
         th,td{{border:1px solid #d0d7de;padding:4px 10px;text-align:left}}\
         th{{background:#f6f8fa}}td.num{{text-align:right}}</style></head><body>\
         <h2>{t}</h2>{body_html}</body></html>",
        t = html_escape(title),
    );
    let path = panels_dir.join(format!("{id}.html"));
    schedflow_dataflow::store::ambient().write_atomic(&path, page.as_bytes())?;
    Ok(path)
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Extract the `<body>…</body>` content of a standalone chart page so it can
/// be embedded in a panel (falls back to the whole string).
fn extract_body(html: &str) -> &str {
    let start = html.find("<body>").map(|i| i + "<body>".len()).unwrap_or(0);
    let end = html.rfind("</body>").unwrap_or(html.len());
    &html[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(id: &str, group: &str) -> Panel {
        Panel {
            id: id.to_owned(),
            title: format!("Panel {id}"),
            chart_html:
                "<html><head></head><body><svg>chart</svg><script>x()</script></body></html>"
                    .to_owned(),
            insight_md: "## Finding\n\n- **notable** thing\n".to_owned(),
            group: group.to_owned(),
        }
    }

    #[test]
    fn ids_validated_and_unique() {
        let mut d = Dashboard::new("t");
        d.add_panel(panel("ok-1", "A")).unwrap();
        assert!(d.add_panel(panel("ok-1", "A")).is_err());
        assert!(d.add_panel(panel("bad/../id", "A")).is_err());
        assert!(d.add_panel(panel("", "A")).is_err());
    }

    #[test]
    fn groups_preserve_order() {
        let mut d = Dashboard::new("t");
        d.add_panel(panel("a", "Frontier")).unwrap();
        d.add_panel(panel("b", "Andes")).unwrap();
        d.add_panel(panel("c", "Frontier")).unwrap();
        assert_eq!(d.groups(), vec!["Frontier", "Andes"]);
    }

    #[test]
    fn write_emits_index_and_panels() {
        let dir = std::env::temp_dir().join(format!("schedflow-dash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = Dashboard::new("Scheduling analytics");
        d.add_panel(panel("waits", "Frontier")).unwrap();
        d.add_panel(panel("backfill", "Frontier")).unwrap();
        let written = d.write(&dir).unwrap();
        assert_eq!(written.len(), 3);
        let index = std::fs::read_to_string(dir.join("index.html")).unwrap();
        assert!(index.contains("panels/waits.html"));
        assert!(index.contains("Scheduling analytics"));
        assert!(index.contains("filter panels"));
        let p = std::fs::read_to_string(dir.join("panels/waits.html")).unwrap();
        assert!(p.contains("<svg>chart</svg>"), "chart body embedded");
        assert!(p.contains("Automated insight"));
        assert!(p.contains("<strong>notable</strong>"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn body_extraction_falls_back() {
        assert_eq!(extract_body("no body tags"), "no body tags");
        assert_eq!(extract_body("<body>x</body>"), "x");
    }

    #[test]
    fn placeholder_panels_render_reason_and_are_detectable() {
        let p = Panel::placeholder("waits", "Wait times", "Frontier", "plot task <failed>");
        assert!(p.is_placeholder());
        assert!(!panel("real", "A").is_placeholder());
        assert!(p.chart_html.contains("Chart unavailable"));
        assert!(
            p.chart_html.contains("plot task &lt;failed&gt;"),
            "reason escaped"
        );

        let dir = std::env::temp_dir().join(format!("schedflow-dash-ph-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = Dashboard::new("t");
        d.add_panel(p).unwrap();
        d.write(&dir).unwrap();
        let page = std::fs::read_to_string(dir.join("panels/waits.html")).unwrap();
        assert!(page.contains("Chart unavailable"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
