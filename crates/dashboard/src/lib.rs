//! # schedflow-dashboard
//!
//! Dashboard assembly and serving — the Plotly Dash substitute: a static
//! multi-panel site with a filterable sidebar ([`assemble`]), a Markdown
//! renderer for analyst commentary ([`markdown`]), and a minimal local HTTP
//! server for browsing it ([`server`]).

pub mod assemble;
pub mod markdown;
pub mod server;

pub use assemble::{write_panel_page, Dashboard, Panel};
pub use server::{serve, ServerHandle};
