//! Golden test for the Chrome trace-event export: the JSON document is a
//! bare event array with the exact key shape trace viewers (Perfetto,
//! `chrome://tracing`) require — `ph`/`ts`/`dur`/`pid`/`tid`/`name`/`args` —
//! timestamps are monotone, and the document round-trips through serde
//! without loss.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use schedflow_dataflow::{
    chrome_events, to_chrome_json, ChromeEvent, RunOptions, Runner, StageKind, Telemetry, Workflow,
};

/// A three-task chain (`fetch` → `transform` → `publish`) run traced under a
/// fixed seed: small enough to eyeball, deep enough that queue-wait, run,
/// and dependency ordering all appear in the export.
fn chain_telemetry() -> Telemetry {
    let mut wf = Workflow::new();
    let raw = wf.value::<u64>("raw");
    let cooked = wf.value::<u64>("cooked");
    let done = wf.value::<u64>("done");
    wf.task("fetch", StageKind::Static, [], [raw.id()], move |ctx| {
        ctx.put(raw, 17)
    });
    wf.task(
        "transform",
        StageKind::Static,
        [raw.id()],
        [cooked.id()],
        move |ctx| {
            let v = *ctx.get(raw)?;
            ctx.put(cooked, v * 3)
        },
    );
    wf.task(
        "publish",
        StageKind::Static,
        [cooked.id()],
        [done.id()],
        move |ctx| {
            let v = *ctx.get(cooked)?;
            ctx.put(done, v + 1)
        },
    );
    wf.retain(done.id());
    let runner = Runner::new(wf).expect("chain workflow is structurally valid");
    let report = runner.run(&RunOptions::with_threads(2).tracing(true).with_trace_seed(7));
    assert!(report.is_success(), "{:?}", report.failed());
    report.telemetry
}

#[test]
fn chrome_json_has_the_trace_event_shape() {
    let t = chain_telemetry();
    let json = to_chrome_json(&t);
    // A bare event array — what Perfetto and chrome://tracing both load.
    assert!(json.trim_start().starts_with('['), "must be a JSON array");
    assert!(json.trim_end().ends_with(']'));
    // Every key of the trace-event format appears literally.
    for key in [
        "\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\"", "\"name\"", "\"args\"",
    ] {
        assert!(json.contains(key), "missing trace-event key {key}");
    }
    // Span identity rides in args for cross-referencing with the summary.
    for key in ["\"span\"", "\"parent\"", "\"task\"", "\"attempt\""] {
        assert!(json.contains(key), "missing args key {key}");
    }
    assert!(json.contains("\"fetch\""));
    assert!(json.contains("\"transform\""));
    assert!(json.contains("\"publish\""));
}

#[test]
fn chrome_events_are_monotone_and_cover_every_span() {
    let t = chain_telemetry();
    let events = chrome_events(&t);
    assert_eq!(events.len(), t.spans.len(), "one event per span");
    for w in events.windows(2) {
        assert!(w[0].ts <= w[1].ts, "ts must be monotone non-decreasing");
    }
    for e in &events {
        assert_eq!(e.ph, "X", "complete events only");
        assert_eq!(e.pid, 1);
        assert!(e.ts >= 0.0);
        assert!(e.dur >= 0.0);
        assert!(!e.name.is_empty());
    }
}

#[test]
fn chrome_json_round_trips_through_serde() {
    let t = chain_telemetry();
    let json = to_chrome_json(&t);
    let parsed: Vec<ChromeEvent> = serde_json::from_str(&json).expect("export parses back");
    assert_eq!(parsed, chrome_events(&t), "round-trip must be lossless");
    // Run-span events carry the bare task name; their ids parse as hex.
    for e in &parsed {
        assert_eq!(e.args.span.len(), 16);
        assert!(u64::from_str_radix(&e.args.span, 16).is_ok());
        assert!(u64::from_str_radix(&e.args.parent, 16).is_ok());
    }
}
