//! The workflow executor: runs a validated graph on the work-stealing pool.
//!
//! Scheduling decisions stay on the caller's thread (a single-consumer event
//! loop over a completion channel); task bodies run on pool workers. This
//! mirrors Swift/T's engine/worker split and keeps the dependency bookkeeping
//! free of locks.
//!
//! The fault-tolerance layer lives here too:
//!
//! * failed attempts are classified ([`TaskError`]) and retried per
//!   [`RetryPolicy`] with exponential backoff and deterministic jitter;
//! * a watchdog enforces per-task deadlines ([`RunOptions::task_timeout`],
//!   [`Workflow::with_deadline`]) and reports overruns as
//!   [`TaskStatus::TimedOut`] — a hung body can't be killed, so its worker
//!   thread is detached at teardown instead of joined;
//! * a configurable stall guard replaces the old silent 3600 s deadlock
//!   break-out: a run with no completions for [`RunOptions::stall_timeout`]
//!   marks in-flight tasks [`TaskStatus::Stalled`] and stops;
//! * when [`RunOptions::manifest_path`] is set, a [`RunManifest`] checkpoint
//!   is persisted after every resolution, and [`RunOptions::resume`] replays
//!   previously succeeded file-producing tasks as [`TaskStatus::Resumed`];
//! * [`RunOptions::chaos`] wraps every attempt with the seeded fault
//!   injector from [`crate::chaos`].

use crate::artifact::{ArtifactKindMeta, DataStore, TaskCtx};
use crate::chaos::{ChaosConfig, Fault};
use crate::error::{splitmix64, RetryPolicy, TaskError};
use crate::fnv::fnv1a_bytes;
use crate::graph::{GraphError, StageKind, Workflow};
use crate::manifest::{fingerprint, RunManifest};
use crate::pool::ThreadPool;
use crate::race::RaceTracker;
use crate::report::{ArtifactDigest, RunReport, TaskReport, TaskStatus};
use crate::store::{self, ChaosFs, CrashPlan, DurableStore, FileCheck, RealFs};
use crossbeam::channel;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads — the `-n N` of the paper's invocation.
    pub threads: usize,
    /// Skip tasks whose file outputs are all newer than their file inputs.
    pub use_cache: bool,
    /// Run-level retry policy; per-task [`Workflow::with_retry`] overrides.
    /// Default: no retries (every failure terminal).
    pub default_retry: RetryPolicy,
    /// Run-level per-task deadline; per-task [`Workflow::with_deadline`]
    /// overrides. Measured from dispatch, so pool queue time counts.
    pub task_timeout: Option<Duration>,
    /// How long the run may go without a single task resolution before the
    /// stall guard reports in-flight tasks as [`TaskStatus::Stalled`] and
    /// stops (previously a hard-coded silent 3600 s break).
    pub stall_timeout: Duration,
    /// Seed for retry-backoff jitter (and nothing else — chaos has its own).
    pub retry_seed: u64,
    /// Persist a [`RunManifest`] checkpoint here after every resolution.
    pub manifest_path: Option<PathBuf>,
    /// Replay previously succeeded file-producing tasks from the manifest at
    /// `manifest_path` instead of re-executing them.
    pub resume: bool,
    /// Seeded fault injection around every attempt (tests, `schedflow chaos`).
    pub chaos: Option<ChaosConfig>,
    /// Dynamic race detection: record every artifact access through
    /// [`TaskCtx`] in a vector-clock happens-before tracker
    /// ([`crate::race::RaceTracker`]) and abort the run with counterexample
    /// traces on a violation. On by default in debug builds (every test
    /// doubles as a soak), opt-in elsewhere.
    pub detect_races: bool,
    /// Record spans, counters, and histograms into
    /// [`RunReport::telemetry`] (see [`crate::trace`]). On by default; the
    /// hot path only pays a thread-local push per instrumented event.
    pub trace: bool,
    /// Seed for deterministic span identities ([`crate::trace::span_id`]).
    pub trace_seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2),
            use_cache: false,
            default_retry: RetryPolicy::none(),
            task_timeout: None,
            stall_timeout: Duration::from_secs(3600),
            retry_seed: 0x5eed,
            manifest_path: None,
            resume: false,
            chaos: None,
            detect_races: cfg!(debug_assertions),
            trace: true,
            trace_seed: 0,
        }
    }
}

impl RunOptions {
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    pub fn cached(mut self) -> Self {
        self.use_cache = true;
        self
    }

    pub fn retrying(mut self, policy: RetryPolicy) -> Self {
        self.default_retry = policy;
        self
    }

    pub fn with_task_timeout(mut self, timeout: Duration) -> Self {
        self.task_timeout = Some(timeout);
        self
    }

    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    pub fn with_manifest(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest_path = Some(path.into());
        self
    }

    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    pub fn detecting_races(mut self, on: bool) -> Self {
        self.detect_races = on;
        self
    }

    pub fn tracing(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    pub fn with_trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }
}

/// Owns a validated workflow and executes it; the [`DataStore`] outlives the
/// run so callers can collect produced values.
pub struct Runner {
    workflow: Arc<Workflow>,
    store: Arc<DataStore>,
    depth: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    Waiting,
    Running,
    Done,
}

struct Completion {
    task: usize,
    /// Attempt number (1-based) this completion belongs to — lets the event
    /// loop discard late completions from attempts the watchdog already
    /// timed out and superseded.
    attempt: u32,
    result: Result<(), TaskError>,
    start_ms: f64,
    end_ms: f64,
    worker: Option<usize>,
    /// Advertised bytes the attempt read / produced (data-plane accounting).
    bytes_in: u64,
    bytes_out: u64,
    /// Logical-plan optimizer accounting the body recorded, if any.
    plan: Option<crate::report::PlanStats>,
    /// Worker-side trace events (artifact writes, par kernels, race hits)
    /// harvested from the attempt's thread-local buffer.
    notes: Vec<crate::trace::TraceNote>,
}

/// Mutable per-run bookkeeping, separated from the shared context so helper
/// methods can borrow both without fighting the borrow checker.
struct RunState {
    state: Vec<NodeState>,
    remaining: Vec<usize>,
    reports: Vec<TaskReport>,
    /// Current attempt per task (0 = never dispatched).
    attempts: Vec<u32>,
    /// Deadline anchor: expected start of the current attempt.
    anchor: Vec<Option<Instant>>,
    /// Unresolved consumer tasks per artifact — the lifetime tracker's
    /// reference counts. A decrement to zero drops the value from the store
    /// (unless the workflow retained it).
    artifact_refs: Vec<usize>,
    /// Content digests captured at producer completion (indexed by artifact),
    /// before the lifetime tracker can drop the value.
    digests: Vec<Option<ArtifactDigest>>,
    /// When each task became ready (dispatch time, run-relative ms) — the
    /// start of its queue-wait span.
    ready_ms: Vec<f64>,
    done: usize,
}

/// Immutable per-run context shared by the event loop and its helpers.
struct Exec<'a> {
    runner: &'a Runner,
    options: &'a RunOptions,
    pool: &'a ThreadPool,
    tx: &'a channel::Sender<Completion>,
    run_start: Instant,
    dependents: Vec<Vec<usize>>,
    fingerprints: Vec<u64>,
    /// Previous run's manifest entries by task name (resume source).
    resume_from: Option<HashMap<String, crate::manifest::ManifestEntry>>,
    /// Skeleton manifest cloned and filled on every checkpoint.
    manifest_template: Option<RunManifest>,
    /// Vector-clock happens-before tracker ([`RunOptions::detect_races`]).
    tracker: Option<Arc<RaceTracker>>,
    /// Run-global countdown to an injected crash
    /// ([`ChaosConfig::crash_after_writes`]): shared by every task attempt's
    /// chaos-wrapped store so the n-th write is counted across the run.
    crash_plan: Option<CrashPlan>,
}

impl Runner {
    /// Validate and wrap a workflow.
    pub fn new(workflow: Workflow) -> Result<Self, GraphError> {
        let depth = workflow.validate()?;
        let store = Arc::new(DataStore::new());
        for (id, value) in &workflow.provided {
            store.put_any(*id, Arc::clone(value));
        }
        Ok(Self {
            workflow: Arc::new(workflow),
            store,
            depth,
        })
    }

    /// The value store (inspect after `run` to collect results).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Task depths from validation (Figure 2 rows).
    pub fn depths(&self) -> &[usize] {
        &self.depth
    }

    /// Execute the workflow to completion and report per-task outcomes.
    pub fn run(&self, options: &RunOptions) -> RunReport {
        let n = self.workflow.tasks.len();
        let deps = self.workflow.dependencies();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ti, ds) in deps.iter().enumerate() {
            for d in ds {
                dependents[d.0].push(ti);
            }
        }

        let pool = ThreadPool::new(options.threads);
        let threads = pool.size();
        let (tx, rx) = channel::unbounded::<Completion>();
        let run_start = Instant::now();

        let fingerprints: Vec<u64> = self
            .workflow
            .tasks
            .iter()
            .map(|t| fingerprint(&self.workflow, &t.name))
            .collect();
        let resume_from = if options.resume {
            options
                .manifest_path
                .as_deref()
                .and_then(RunManifest::load)
                .map(|m| {
                    m.tasks
                        .into_iter()
                        .map(|e| (e.name.clone(), e))
                        .collect::<HashMap<_, _>>()
                })
        } else {
            None
        };
        let manifest_template = options
            .manifest_path
            .is_some()
            .then(|| RunManifest::for_workflow(&self.workflow));

        let exec = Exec {
            runner: self,
            options,
            pool: &pool,
            tx: &tx,
            run_start,
            dependents,
            fingerprints,
            resume_from,
            manifest_template,
            tracker: options
                .detect_races
                .then(|| Arc::new(RaceTracker::for_workflow(&self.workflow))),
            crash_plan: options
                .chaos
                .and_then(|c| c.crash_after_writes)
                .map(CrashPlan::new),
        };

        let mut st = RunState {
            state: vec![NodeState::Waiting; n],
            remaining: deps.iter().map(|d| d.len()).collect(),
            reports: (0..n)
                .map(|i| TaskReport {
                    name: self.workflow.tasks[i].name.clone(),
                    kind: match self.workflow.tasks[i].kind {
                        StageKind::Static => "static",
                        StageKind::UserDefined => "user-defined",
                    },
                    status: TaskStatus::Skipped,
                    start_ms: 0.0,
                    end_ms: 0.0,
                    worker: None,
                    depth: self.depth[i],
                    attempts: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    plan: None,
                    estimate: self.workflow.tasks[i].plan_estimate.clone(),
                })
                .collect(),
            attempts: vec![0; n],
            anchor: vec![None; n],
            artifact_refs: self.workflow.consumer_counts(),
            digests: vec![None; self.workflow.artifacts.len()],
            ready_ms: vec![0.0; n],
            done: 0,
        };

        // Observability: the span builder lives on the event-loop thread;
        // worker-side events arrive inside completion messages.
        let trace_edges: Vec<crate::trace::DepEdge> = if options.trace {
            let mut set = std::collections::BTreeSet::new();
            for (ti, ds) in deps.iter().enumerate() {
                for d in ds {
                    set.insert((d.0, ti));
                }
            }
            set.into_iter()
                .map(|(from, to)| crate::trace::DepEdge {
                    from: self.workflow.tasks[from].name.clone(),
                    to: self.workflow.tasks[to].name.clone(),
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut tracer =
            crate::trace::TraceBuilder::new(options.trace, options.trace_seed, n, trace_edges);

        // Submit every root (deterministic order). A root resolved
        // synchronously (cache/resume hit) releases its dependents
        // immediately.
        let mut initially_ready: Vec<usize> = (0..n).filter(|&i| st.remaining[i] == 0).collect();
        initially_ready.sort_unstable();
        for i in initially_ready {
            if exec.dispatch(i, &mut st) {
                st.done += 1;
                exec.release_dependents(i, &mut st);
            }
        }
        if exec.manifest_template.is_some() {
            let ck_start = run_start.elapsed().as_secs_f64() * 1000.0;
            exec.checkpoint(&st);
            let ck_end = run_start.elapsed().as_secs_f64() * 1000.0;
            tracer.checkpoint("init", 0, ck_start, ck_end);
        }

        let mut last_progress = Instant::now();
        // True once a timed-out or stalled body may still be occupying a
        // worker: teardown must detach instead of join.
        let mut zombie_bodies = false;

        while st.done < n {
            // Wake at the earliest of: stall guard, next running-task
            // deadline.
            let mut wake = last_progress + options.stall_timeout;
            for i in 0..n {
                if st.state[i] == NodeState::Running {
                    if let (Some(anchor), Some(d)) = (st.anchor[i], exec.deadline_of(i)) {
                        wake = wake.min(anchor + d);
                    }
                }
            }
            let timeout = wake
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));

            match rx.recv_timeout(timeout) {
                Ok(mut c) => {
                    let i = c.task;
                    // Discard stale completions: the task already resolved
                    // (e.g. the watchdog timed it out) or this belongs to a
                    // superseded attempt.
                    if st.state[i] != NodeState::Running || c.attempt != st.attempts[i] {
                        continue;
                    }
                    last_progress = Instant::now();
                    st.reports[i].start_ms = c.start_ms;
                    st.reports[i].end_ms = c.end_ms;
                    st.reports[i].worker = c.worker;
                    st.reports[i].attempts = c.attempt;
                    st.reports[i].bytes_in = c.bytes_in;
                    st.reports[i].bytes_out = c.bytes_out;
                    st.reports[i].plan = c.plan.take();
                    tracer.attempt_finished(
                        i,
                        &self.workflow.tasks[i].name,
                        c.attempt,
                        st.ready_ms[i],
                        c.start_ms,
                        c.end_ms,
                        c.worker,
                        c.result.is_ok(),
                        &c.result
                            .as_ref()
                            .err()
                            .map(ToString::to_string)
                            .unwrap_or_default(),
                        c.bytes_in + c.bytes_out,
                        std::mem::take(&mut c.notes),
                    );
                    match c.result {
                        Ok(()) => {
                            st.state[i] = NodeState::Done;
                            st.anchor[i] = None;
                            st.done += 1;
                            st.reports[i].status = TaskStatus::Succeeded;
                            // Digests must be captured before dependents can
                            // resolve: a released consumer may be the value's
                            // last, and the lifetime tracker would drop it.
                            exec.capture_digests(i, &mut st);
                            exec.release_inputs(i, &mut st);
                            exec.release_dependents(i, &mut st);
                        }
                        Err(err) => {
                            let msg = err.to_string();
                            if msg.contains(store::CRASH_MARKER) {
                                // Simulated process death: this completion is
                                // never checkpointed — only checkpoints
                                // persisted before the crash survive, exactly
                                // as if the process had been killed mid-write.
                                std::panic::resume_unwind(Box::new(msg));
                            }
                            let policy = exec.retry_of(i);
                            if policy.should_retry(&err, c.attempt) {
                                let delay = policy.delay_ms(
                                    c.attempt,
                                    splitmix64(options.retry_seed ^ (i as u64)),
                                );
                                st.attempts[i] = c.attempt + 1;
                                st.reports[i].attempts = st.attempts[i];
                                tracer.retry_scheduled(
                                    &self.workflow.tasks[i].name,
                                    c.attempt,
                                    run_start.elapsed().as_secs_f64() * 1000.0,
                                    delay,
                                );
                                exec.submit_attempt(i, c.attempt + 1, delay, &mut st);
                            } else {
                                st.state[i] = NodeState::Done;
                                st.anchor[i] = None;
                                st.done += 1;
                                st.reports[i].status = TaskStatus::Failed(err.to_string());
                                exec.release_inputs(i, &mut st);
                                exec.propagate_failure(i, &mut st);
                            }
                        }
                    }
                    if exec.manifest_template.is_some() {
                        let ck_start = run_start.elapsed().as_secs_f64() * 1000.0;
                        exec.checkpoint(&st);
                        let ck_end = run_start.elapsed().as_secs_f64() * 1000.0;
                        tracer.checkpoint(
                            &self.workflow.tasks[i].name,
                            c.attempt,
                            ck_start,
                            ck_end,
                        );
                    }
                    // Dynamic cross-check: a happens-before violation aborts
                    // the run. Tasks still waiting are skipped; the
                    // counterexample traces reach the report below.
                    if exec.tracker.as_ref().is_some_and(|t| t.has_violations()) {
                        for j in 0..n {
                            if st.state[j] == NodeState::Waiting {
                                st.state[j] = NodeState::Done;
                                st.reports[j].status = TaskStatus::Skipped;
                            }
                        }
                        exec.checkpoint(&st);
                        break;
                    }
                }
                Err(channel::RecvTimeoutError::Timeout) => {
                    let now = Instant::now();

                    // Watchdog: expire running attempts past their deadline.
                    let mut progressed = false;
                    for i in 0..n {
                        if st.state[i] != NodeState::Running {
                            continue;
                        }
                        let (Some(anchor), Some(d)) = (st.anchor[i], exec.deadline_of(i)) else {
                            continue;
                        };
                        if now < anchor + d {
                            continue;
                        }
                        let elapsed_ms = now.saturating_duration_since(anchor).as_millis() as u64;
                        let err = TaskError::Timeout { elapsed_ms };
                        let policy = exec.retry_of(i);
                        let attempt = st.attempts[i];
                        progressed = true;
                        if policy.should_retry(&err, attempt) {
                            // The hung body keeps running detached; its late
                            // completion is discarded by the attempt guard.
                            zombie_bodies = true;
                            st.attempts[i] = attempt + 1;
                            st.reports[i].attempts = st.attempts[i];
                            let delay = policy
                                .delay_ms(attempt, splitmix64(options.retry_seed ^ (i as u64)));
                            exec.submit_attempt(i, attempt + 1, delay, &mut st);
                        } else {
                            zombie_bodies = true;
                            st.state[i] = NodeState::Done;
                            st.done += 1;
                            st.reports[i].status = TaskStatus::TimedOut { elapsed_ms };
                            st.reports[i].start_ms =
                                anchor.saturating_duration_since(run_start).as_secs_f64() * 1000.0;
                            st.reports[i].end_ms = run_start.elapsed().as_secs_f64() * 1000.0;
                            st.anchor[i] = None;
                            exec.release_inputs(i, &mut st);
                            exec.propagate_failure(i, &mut st);
                        }
                    }
                    if progressed {
                        last_progress = now;
                        exec.checkpoint(&st);
                        continue;
                    }

                    // Stall guard: nothing resolved for the whole window.
                    if now >= last_progress + options.stall_timeout {
                        let elapsed_ms =
                            now.saturating_duration_since(last_progress).as_millis() as u64;
                        for i in 0..n {
                            match st.state[i] {
                                NodeState::Running => {
                                    zombie_bodies = true;
                                    st.reports[i].status = TaskStatus::Stalled { elapsed_ms };
                                    st.reports[i].end_ms =
                                        run_start.elapsed().as_secs_f64() * 1000.0;
                                }
                                NodeState::Waiting => {
                                    st.reports[i].status = TaskStatus::Skipped;
                                }
                                NodeState::Done => {}
                            }
                        }
                        exec.checkpoint(&st);
                        break;
                    }
                }
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }

        let makespan_ms = run_start.elapsed().as_secs_f64() * 1000.0;
        let reports = std::mem::take(&mut st.reports);
        let telemetry = tracer.finish(&reports, makespan_ms, threads);
        let mut artifacts: Vec<ArtifactDigest> = std::mem::take(&mut st.digests)
            .into_iter()
            .flatten()
            .collect();
        artifacts.sort_by(|a, b| a.name.cmp(&b.name));
        let race_violations = exec
            .tracker
            .as_ref()
            .map(|t| t.violations())
            .unwrap_or_default();
        drop(exec);
        drop(rx);
        if zombie_bodies && pool.pending() > 0 {
            // A timed-out/stalled body may never return; joining would hang.
            pool.detach();
        }
        RunReport {
            threads,
            makespan_ms,
            peak_resident_bytes: self.store.peak_resident_bytes(),
            tasks: reports,
            artifacts,
            race_violations,
            telemetry,
        }
    }

    /// Make-style freshness: all file outputs exist and are at least as new
    /// as every file input; only applicable to tasks whose outputs are all
    /// files (value outputs cannot be reconstructed from disk).
    fn outputs_fresh(&self, i: usize) -> bool {
        let spec = &self.workflow.tasks[i];
        if spec.outputs.is_empty() {
            return false;
        }
        let mtime = |id: &crate::artifact::ArtifactId| -> Option<std::time::SystemTime> {
            match &self.workflow.artifacts[id.0].kind {
                ArtifactKindMeta::File(p) => std::fs::metadata(p).and_then(|m| m.modified()).ok(),
                ArtifactKindMeta::Value => None,
            }
        };
        let mut newest_input: Option<std::time::SystemTime> = None;
        for input in &spec.inputs {
            match &self.workflow.artifacts[input.0].kind {
                ArtifactKindMeta::Value => return false,
                ArtifactKindMeta::File(_) => match mtime(input) {
                    Some(t) => {
                        newest_input = Some(newest_input.map_or(t, |n| n.max(t)));
                    }
                    None => return false, // missing input: let the task fail loudly
                },
            }
        }
        for output in &spec.outputs {
            match &self.workflow.artifacts[output.0].kind {
                ArtifactKindMeta::Value => return false,
                ArtifactKindMeta::File(p) => match mtime(output) {
                    Some(out_t) => {
                        if let Some(in_t) = newest_input {
                            if out_t < in_t {
                                return false;
                            }
                        }
                        // A fresh mtime is not enough: a checksum-invalid
                        // cached output is quarantined and rebuilt instead of
                        // being served to downstream parsers.
                        if !verified_on_disk(p) {
                            return false;
                        }
                    }
                    None => return false,
                },
            }
        }
        true
    }
}

/// True when the file is safe to reuse: checksum verified, or a legacy file
/// with no footer. A corrupt file is moved aside to `<name>.corrupt` so the
/// producing task re-executes (quarantine-and-rebuild).
fn verified_on_disk(p: &std::path::Path) -> bool {
    let durable = DurableStore::real();
    match durable.check_file(p) {
        Ok(FileCheck::Verified | FileCheck::Unchecksummed) => true,
        Ok(FileCheck::Corrupt) => {
            let _ = durable.quarantine(p);
            false
        }
        Err(_) => false,
    }
}

impl Exec<'_> {
    /// Effective retry policy of a task.
    fn retry_of(&self, i: usize) -> RetryPolicy {
        self.runner.workflow.tasks[i]
            .retry
            .unwrap_or(self.options.default_retry)
    }

    /// Effective deadline of a task, if any.
    fn deadline_of(&self, i: usize) -> Option<Duration> {
        self.runner.workflow.tasks[i]
            .deadline
            .or(self.options.task_timeout)
    }

    /// Submit a ready task, or resolve it synchronously (resume hit, then
    /// cache hit). Returns true when resolved synchronously; the caller
    /// accounts `done` and releases dependents.
    fn dispatch(&self, i: usize, st: &mut RunState) -> bool {
        // Queue-wait starts now: all dependencies just resolved.
        st.ready_ms[i] = self.run_start.elapsed().as_secs_f64() * 1000.0;
        // Assign the task's vector clock before any attempt (or synchronous
        // resolution) can order against it — cached/resumed tasks still
        // anchor the happens-before chain for their dependents.
        if let Some(t) = &self.tracker {
            t.task_dispatched(i);
        }
        if let Some(prev) = &self.resume_from {
            if let Some(entry) = prev.get(&self.runner.workflow.tasks[i].name) {
                // A manifest claim is honored only when every recorded file
                // output still verifies; a corrupt survivor is quarantined
                // and the task re-executes.
                if entry.resumable(self.fingerprints[i])
                    && entry.file_outputs.iter().all(|p| verified_on_disk(p))
                {
                    st.state[i] = NodeState::Done;
                    st.reports[i].status = TaskStatus::Resumed;
                    self.capture_digests(i, st);
                    self.release_inputs(i, st);
                    return true;
                }
            }
        }
        if self.options.use_cache && self.runner.outputs_fresh(i) {
            st.state[i] = NodeState::Done;
            st.reports[i].status = TaskStatus::Cached;
            self.capture_digests(i, st);
            self.release_inputs(i, st);
            return true;
        }
        st.state[i] = NodeState::Running;
        st.attempts[i] = 1;
        st.reports[i].attempts = 1;
        self.submit_attempt(i, 1, 0, st);
        false
    }

    /// Submit one attempt of task `i` to the pool, optionally preceded by a
    /// backoff delay (slept on the worker).
    fn submit_attempt(&self, i: usize, attempt: u32, delay_ms: u64, st: &mut RunState) {
        st.anchor[i] = Some(Instant::now() + Duration::from_millis(delay_ms));
        let wf = Arc::clone(&self.runner.workflow);
        let store = Arc::clone(&self.runner.store);
        let tx = self.tx.clone();
        let chaos = self.options.chaos;
        let run_start = self.run_start;
        let tracker = self.tracker.clone();
        let crash_plan = self.crash_plan.clone();
        let trace_on = self.options.trace;
        self.pool.execute(move || {
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            let start_ms = run_start.elapsed().as_secs_f64() * 1000.0;
            if trace_on {
                // Open this worker's lock-free note buffer for the attempt;
                // harvested after the body and shipped in the completion.
                crate::trace::begin_attempt(run_start);
            }
            let spec = &wf.tasks[i];
            let injection = chaos
                .map(|c| c.injection(spec.kind, &spec.name, attempt))
                .unwrap_or_default();
            if let Some(d) = injection.delay_ms {
                std::thread::sleep(Duration::from_millis(d));
            }
            let mut bytes_in = 0u64;
            let mut bytes_out = 0u64;
            let mut plan_stats = None;
            let result = match injection.outcome {
                Some(Fault::TransientFailure) => Err(TaskError::transient(format!(
                    "chaos: injected transient failure (attempt {attempt})"
                ))),
                Some(Fault::Panic) => {
                    std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), TaskError> {
                        panic!("chaos: injected panic (attempt {attempt})");
                    }))
                    .unwrap_or_else(|p| Err(TaskError::Panic(panic_message(p))))
                }
                // Write-time faults are injected through the durable store's
                // `Fs` handle below, never as an attempt-level outcome.
                Some(
                    Fault::IoTorn | Fault::IoEnospc | Fault::IoEio | Fault::CrashAfterWrites(_),
                ) => Err(TaskError::transient(format!(
                    "chaos: injected i/o fault (attempt {attempt})"
                ))),
                None => {
                    let mut ctx = TaskCtx::new(&store, &spec.name, &spec.inputs, &spec.outputs)
                        .with_estimate(spec.plan_estimate.clone());
                    if let Some(t) = tracker {
                        ctx = ctx.with_race(t, i);
                    }
                    // Every durable write the body performs goes through the
                    // thread's ambient store; under chaos that store injects
                    // seeded I/O faults and counts down to the crash point.
                    let durable = match chaos {
                        Some(c) if c.has_io_faults() || crash_plan.is_some() => {
                            DurableStore::with_fs(Arc::new(ChaosFs::new(
                                Arc::new(RealFs),
                                c,
                                c.scope.covers(spec.kind),
                                &spec.name,
                                attempt,
                                crash_plan,
                            )))
                        }
                        _ => DurableStore::real(),
                    };
                    let result = store::with_ambient(&durable, || {
                        std::panic::catch_unwind(AssertUnwindSafe(|| (spec.body)(&ctx)))
                            .unwrap_or_else(|p| Err(TaskError::Panic(panic_message(p))))
                    })
                    .and_then(|()| verify_outputs(&wf, &store, i));
                    bytes_in = ctx.bytes_in.load(std::sync::atomic::Ordering::Relaxed);
                    bytes_out = ctx.bytes_out.load(std::sync::atomic::Ordering::Relaxed);
                    plan_stats = ctx.take_plan_stats();
                    result
                }
            };
            let end_ms = run_start.elapsed().as_secs_f64() * 1000.0;
            let notes = if trace_on {
                crate::trace::end_attempt()
            } else {
                Vec::new()
            };
            let _ = tx.send(Completion {
                task: i,
                attempt,
                result,
                start_ms,
                end_ms,
                worker: current_worker_index(),
                bytes_in,
                bytes_out,
                plan: plan_stats,
                notes,
            });
        });
    }

    /// Release the dependents of a successfully resolved task, dispatching
    /// newly ready ones; synchronous resolutions (cache/resume hits) recurse.
    fn release_dependents(&self, finished: usize, st: &mut RunState) {
        let mut stack = vec![finished];
        while let Some(cur) = stack.pop() {
            for j in self.dependents[cur].clone() {
                if st.state[j] != NodeState::Waiting {
                    continue;
                }
                st.remaining[j] -= 1;
                if st.remaining[j] == 0 && self.dispatch(j, st) {
                    st.done += 1;
                    stack.push(j);
                }
            }
        }
    }

    /// Propagate a terminal failure: transitively skip dependents, except
    /// failure-tolerant tasks, which are released instead (they run on
    /// whatever artifacts survived).
    fn propagate_failure(&self, failed: usize, st: &mut RunState) {
        let mut stack = vec![failed];
        while let Some(cur) = stack.pop() {
            for j in self.dependents[cur].clone() {
                if st.state[j] != NodeState::Waiting {
                    continue;
                }
                if self.runner.workflow.tasks[j].tolerates_failure {
                    st.remaining[j] -= 1;
                    if st.remaining[j] == 0 && self.dispatch(j, st) {
                        st.done += 1;
                        self.release_dependents(j, st);
                    }
                } else {
                    st.state[j] = NodeState::Done;
                    st.reports[j].status = TaskStatus::Skipped;
                    st.done += 1;
                    self.release_inputs(j, st);
                    stack.push(j);
                }
            }
        }
    }

    /// Lifetime tracking: task `i` has terminally resolved, so each of its
    /// distinct input artifacts loses one pending consumer. An artifact whose
    /// last consumer resolves is dropped from the store — unless the workflow
    /// retained it for post-run inspection. (Artifacts nobody consumes are
    /// never dropped: they are the run's terminal products.)
    fn release_inputs(&self, i: usize, st: &mut RunState) {
        let wf = &self.runner.workflow;
        let mut inputs = wf.tasks[i].inputs.clone();
        inputs.sort_unstable();
        inputs.dedup();
        for a in inputs {
            let refs = &mut st.artifact_refs[a.0];
            debug_assert!(*refs > 0, "consumer resolved twice for artifact #{}", a.0);
            *refs -= 1;
            if *refs == 0 && !wf.is_retained(a) && wf.file_path(a).is_none() {
                self.runner.store.remove(a);
            }
        }
    }

    /// Capture content digests of task `i`'s outputs for the determinism
    /// verifier: file artifacts are hashed from their on-disk bytes (with
    /// any valid checksum footer stripped, so digests stay content-based and
    /// comparable across store and legacy writers), value artifacts through
    /// the digest function registered with [`Workflow::track_digest`]
    /// (untracked values are skipped). Runs on the event-loop thread at
    /// resolution time, *before* the lifetime tracker can drop the value.
    fn capture_digests(&self, i: usize, st: &mut RunState) {
        let wf = &self.runner.workflow;
        for &out in &wf.tasks[i].outputs {
            let entry = match &wf.artifacts[out.0].kind {
                ArtifactKindMeta::File(p) => Some(ArtifactDigest {
                    name: wf.artifacts[out.0].name.clone(),
                    kind: "file",
                    digest: std::fs::read(p)
                        .ok()
                        .map(|b| format!("{:016x}", fnv1a_bytes(store::payload_of(&b)))),
                }),
                ArtifactKindMeta::Value => wf.digest_fn(out).map(|f| ArtifactDigest {
                    name: wf.artifacts[out.0].name.clone(),
                    kind: "value",
                    digest: self
                        .runner
                        .store
                        .get_any(out)
                        .and_then(|v| f(v.as_ref()))
                        .map(|h| format!("{h:016x}")),
                }),
            };
            if entry.is_some() {
                st.digests[out.0] = entry;
            }
        }
    }

    /// Persist the checkpoint manifest, if configured. Best-effort: a failed
    /// checkpoint write must not fail the run.
    fn checkpoint(&self, st: &RunState) {
        let (Some(path), Some(template)) = (
            self.options.manifest_path.as_ref(),
            self.manifest_template.as_ref(),
        ) else {
            return;
        };
        let mut manifest = template.clone();
        // Entries are created by RunManifest::for_workflow in task order, so
        // the pairing with the run-state vectors is positional.
        for (i, (entry, report)) in manifest.tasks.iter_mut().zip(&st.reports).enumerate() {
            entry.status = match st.state[i] {
                NodeState::Done => report.status.manifest_str().to_owned(),
                NodeState::Running => "running".to_owned(),
                NodeState::Waiting => "pending".to_owned(),
            };
            entry.attempts = report.attempts;
        }
        let _ = manifest.save(path);
    }
}

/// After a body returns Ok, every declared value output must exist in the
/// store and every declared file output must exist on disk. A violated
/// declaration is a contract bug, not flakiness: permanent.
fn verify_outputs(wf: &Workflow, store: &DataStore, i: usize) -> Result<(), TaskError> {
    let spec = &wf.tasks[i];
    for out in &spec.outputs {
        match &wf.artifacts[out.0].kind {
            ArtifactKindMeta::Value => {
                if !store.contains(*out) {
                    return Err(TaskError::permanent(format!(
                        "task {:?} completed without producing value artifact {:?}",
                        spec.name, wf.artifacts[out.0].name
                    )));
                }
            }
            ArtifactKindMeta::File(p) => {
                if !p.exists() {
                    return Err(TaskError::permanent(format!(
                        "task {:?} completed without writing file {:?}",
                        spec.name,
                        p.display()
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Worker index of the current pool thread (from its name), if any.
fn current_worker_index() -> Option<usize> {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("schedflow-worker-"))
        .and_then(|s| s.parse().ok())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_owned()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_linear_chain_in_order() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("produce", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put(a, 21)
        });
        wf.task(
            "double",
            StageKind::Static,
            [a.id()],
            [b.id()],
            move |ctx| {
                let v = *ctx.get(a)?;
                ctx.put(b, v * 2)
            },
        );
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(4));
        assert!(report.is_success(), "{report:?}");
        let out = runner
            .store()
            .get_any(b.id())
            .unwrap()
            .downcast::<u32>()
            .unwrap();
        assert_eq!(*out, 42);
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut wf = Workflow::new();
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let out = wf.value::<()>(&format!("o{i}"));
            let peak = Arc::clone(&peak);
            let cur = Arc::clone(&cur);
            wf.task(
                &format!("t{i}"),
                StageKind::Static,
                [],
                [out.id()],
                move |ctx| {
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    cur.fetch_sub(1, Ordering::SeqCst);
                    ctx.put(Artifact::<()>::new(ctx.outputs[0]), ())
                },
            );
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(4));
        assert!(report.is_success());
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "expected overlap, peak={}",
            peak.load(Ordering::SeqCst)
        );
        assert!(report.max_concurrency() >= 2);
    }

    use crate::artifact::Artifact;

    #[test]
    fn failure_skips_dependents_but_not_independents() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let c = wf.value::<u32>("c");
        wf.task("fail", StageKind::Static, [], [a.id()], |_| {
            Err("deliberate".to_owned())
        });
        wf.task("dep", StageKind::Static, [a.id()], [b.id()], move |ctx| {
            ctx.put(b, 1)
        });
        wf.task("indep", StageKind::Static, [], [c.id()], move |ctx| {
            ctx.put(c, 2)
        });
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(!report.is_success());
        assert_eq!(report.failed().len(), 1);
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.succeeded(), 1);
        assert!(runner.store().contains(c.id()));
        assert!(!runner.store().contains(b.id()));
    }

    #[test]
    fn panicking_task_reports_failure() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        wf.task("boom", StageKind::Static, [], [a.id()], |_| {
            panic!("kaboom");
        });
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        match &report.tasks[0].status {
            TaskStatus::Failed(msg) => assert!(msg.contains("kaboom")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn missing_declared_output_is_failure() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("never-produced");
        wf.task("lazy", StageKind::Static, [], [a.id()], |_| Ok(()));
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        assert!(!report.is_success());
    }

    #[test]
    fn provided_parameters_reach_tasks() {
        let mut wf = Workflow::new();
        let param = wf.value::<String>("param");
        let out = wf.value::<String>("out");
        wf.provide(param, "hello".to_owned());
        wf.task(
            "use",
            StageKind::Static,
            [param.id()],
            [out.id()],
            move |ctx| {
                let p = ctx.get(param)?;
                ctx.put(out, format!("{p} world"))
            },
        );
        let runner = Runner::new(wf).unwrap();
        assert!(runner.run(&RunOptions::with_threads(1)).is_success());
        let v = runner
            .store()
            .get_any(out.id())
            .unwrap()
            .downcast::<String>()
            .unwrap();
        assert_eq!(*v, "hello world");
    }

    #[test]
    fn file_cache_skips_fresh_outputs() {
        let dir = std::env::temp_dir().join(format!("schedflow-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("input.txt");
        let out_path = dir.join("output.txt");
        std::fs::write(&in_path, "data").unwrap();
        let _ = std::fs::remove_file(&out_path);

        let runs = Arc::new(AtomicUsize::new(0));
        let build = |runs: Arc<AtomicUsize>| {
            let mut wf = Workflow::new();
            let input = wf.file(&in_path);
            let output = wf.file(&out_path);
            let out_clone = output.clone();
            wf.task(
                "copy",
                StageKind::Static,
                [input.id()],
                [output.id()],
                move |ctx| {
                    runs.fetch_add(1, Ordering::SeqCst);
                    let p = ctx.path(&out_clone)?;
                    std::fs::write(p, "copied").map_err(|e| e.to_string())
                },
            );
            wf
        };

        // First run executes.
        let r1 = Runner::new(build(Arc::clone(&runs))).unwrap();
        assert!(r1.run(&RunOptions::with_threads(1).cached()).is_success());
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        // Second run is served from cache.
        let r2 = Runner::new(build(Arc::clone(&runs))).unwrap();
        let report = r2.run(&RunOptions::with_threads(1).cached());
        assert!(report.is_success());
        assert_eq!(report.cached(), 1);
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        // Touch the input newer than the output: re-executes.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&in_path, "data2").unwrap();
        let r3 = Runner::new(build(Arc::clone(&runs))).unwrap();
        let report = r3.run(&RunOptions::with_threads(1).cached());
        assert!(report.is_success());
        assert_eq!(runs.load(Ordering::SeqCst), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wide_fanout_completes_under_low_thread_count() {
        let mut wf = Workflow::new();
        let root = wf.value::<u64>("root");
        wf.task("root", StageKind::Static, [], [root.id()], move |ctx| {
            ctx.put(root, 5)
        });
        let mut leaves = Vec::new();
        for i in 0..50 {
            let leaf = wf.value::<u64>(&format!("leaf{i}"));
            leaves.push(leaf);
            wf.task(
                &format!("leaf{i}"),
                StageKind::Static,
                [root.id()],
                [leaf.id()],
                move |ctx| {
                    let v = *ctx.get(root)?;
                    ctx.put(leaf, v + i)
                },
            );
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(report.is_success());
        for (i, leaf) in leaves.iter().enumerate() {
            let v = runner
                .store()
                .get_any(leaf.id())
                .unwrap()
                .downcast::<u64>()
                .unwrap();
            assert_eq!(*v, 5 + i as u64);
        }
    }

    // ---- lifetime-tracking / byte-accounting tests ----

    #[test]
    fn consumed_artifacts_drop_after_last_consumer() {
        let mut wf = Workflow::new();
        let a = wf.value::<Vec<u8>>("intermediate");
        let b = wf.value::<usize>("terminal");
        wf.task("produce", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put_sized(a, vec![0u8; 1000], 1000)
        });
        wf.task(
            "consume",
            StageKind::Static,
            [a.id()],
            [b.id()],
            move |ctx| {
                let v = ctx.get(a)?;
                ctx.put(b, v.len())
            },
        );
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(report.is_success(), "{report:?}");
        assert!(
            !runner.store().contains(a.id()),
            "intermediate dropped after its last consumer"
        );
        assert!(
            runner.store().contains(b.id()),
            "zero-consumer terminal output kept"
        );
        assert_eq!(runner.store().resident_bytes(), 0);
        assert_eq!(report.peak_resident_bytes, 1000);
    }

    #[test]
    fn retained_artifacts_survive_their_consumers() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("kept");
        let b = wf.value::<u32>("out");
        wf.task("produce", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put(a, 11)
        });
        wf.task(
            "consume",
            StageKind::Static,
            [a.id()],
            [b.id()],
            move |ctx| {
                let v = *ctx.get(a)?;
                ctx.put(b, v + 1)
            },
        );
        wf.retain(a.id());
        let runner = Runner::new(wf).unwrap();
        assert!(runner.run(&RunOptions::with_threads(2)).is_success());
        assert!(runner.store().contains(a.id()), "retained value survives");
    }

    #[test]
    fn fan_in_artifact_dropped_only_after_all_consumers() {
        // One producer, three consumers: the shared input must survive until
        // the last consumer resolves, then go.
        let mut wf = Workflow::new();
        let shared = wf.value::<u64>("shared");
        wf.task("src", StageKind::Static, [], [shared.id()], move |ctx| {
            ctx.put_sized(shared, 5, 8)
        });
        for i in 0..3 {
            let out = wf.value::<u64>(&format!("o{i}"));
            wf.task(
                &format!("c{i}"),
                StageKind::Static,
                [shared.id()],
                [out.id()],
                move |ctx| {
                    let v = *ctx.get(shared)?;
                    ctx.put(out, v + i)
                },
            );
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(4));
        assert!(report.is_success(), "{report:?}");
        assert!(!runner.store().contains(shared.id()));
    }

    #[test]
    fn reports_carry_per_task_bytes() {
        let mut wf = Workflow::new();
        let a = wf.value::<Vec<u8>>("payload");
        let b = wf.value::<usize>("len");
        wf.task("produce", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put_sized(a, vec![7u8; 300], 300)
        });
        wf.task(
            "measure",
            StageKind::Static,
            [a.id()],
            [b.id()],
            move |ctx| {
                let v = ctx.get(a)?;
                ctx.put_sized(b, v.len(), 8)
            },
        );
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        assert!(report.is_success());
        let produce = report.tasks.iter().find(|t| t.name == "produce").unwrap();
        let measure = report.tasks.iter().find(|t| t.name == "measure").unwrap();
        assert_eq!(produce.bytes_out, 300);
        assert_eq!(produce.bytes_in, 0);
        assert_eq!(measure.bytes_in, 300);
        assert_eq!(measure.bytes_out, 8);
        assert_eq!(report.total_bytes_in(), 300);
        assert_eq!(report.total_bytes_out(), 308);
        assert!(report.peak_resident_bytes >= 300);
    }

    // ---- fault-tolerance tests ----

    use crate::chaos::ChaosConfig;
    use crate::error::{RetryOn, RetryPolicy};
    use std::time::Duration;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "schedflow-exec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn flaky_task_succeeds_under_retry_policy() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let tries = Arc::new(AtomicUsize::new(0));
        let tries2 = Arc::clone(&tries);
        let id = wf.task("flaky", StageKind::Static, [], [a.id()], move |ctx| {
            if tries2.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient glitch".to_owned())
            } else {
                ctx.put(a, 7)
            }
        });
        wf.with_retry(id, RetryPolicy::transient(5).with_backoff(1, 4));
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(report.is_success(), "{report:?}");
        assert_eq!(report.tasks[0].attempts, 3);
        assert_eq!(report.retried(), vec![("flaky", 3)]);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_exhausted_reports_failure_with_attempts() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let id = wf.task("hopeless", StageKind::Static, [], [a.id()], |_| {
            Err("always".to_owned())
        });
        wf.with_retry(id, RetryPolicy::transient(3).with_backoff(1, 2));
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        assert!(!report.is_success());
        assert_eq!(report.tasks[0].attempts, 3);
        assert!(matches!(report.tasks[0].status, TaskStatus::Failed(_)));
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let tries = Arc::new(AtomicUsize::new(0));
        let tries2 = Arc::clone(&tries);
        let id = wf.task_typed("fatal", StageKind::Static, [], [a.id()], move |_| {
            tries2.fetch_add(1, Ordering::SeqCst);
            Err(TaskError::permanent("bad input"))
        });
        wf.with_retry(id, RetryPolicy::transient(5));
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        assert!(!report.is_success());
        assert_eq!(tries.load(Ordering::SeqCst), 1, "no retry on permanent");
    }

    #[test]
    fn deadline_times_out_hung_task_and_skips_dependents() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let id = wf.task("hang", StageKind::Static, [], [a.id()], move |ctx| {
            std::thread::sleep(Duration::from_secs(30));
            ctx.put(a, 1)
        });
        wf.with_deadline(id, Duration::from_millis(50));
        wf.task("dep", StageKind::Static, [a.id()], [b.id()], move |ctx| {
            ctx.put(b, 2)
        });
        let runner = Runner::new(wf).unwrap();
        let t0 = std::time::Instant::now();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog fired early"
        );
        assert!(matches!(
            report.tasks[0].status,
            TaskStatus::TimedOut { .. }
        ));
        assert_eq!(report.tasks[1].status, TaskStatus::Skipped);
        assert!(!report.is_success());
    }

    #[test]
    fn timeout_retry_reruns_task() {
        // First attempt hangs; the watchdog expires it and the retry (with a
        // fast body) succeeds.
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let tries = Arc::new(AtomicUsize::new(0));
        let tries2 = Arc::clone(&tries);
        let id = wf.task("slow-once", StageKind::Static, [], [a.id()], move |ctx| {
            if tries2.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_secs(30));
            }
            ctx.put(a, 9)
        });
        wf.with_deadline(id, Duration::from_millis(80));
        wf.with_retry(
            id,
            RetryPolicy::transient(3)
                .with_backoff(1, 2)
                .retrying(RetryOn::TransientAndTimeout),
        );
        let runner = Runner::new(wf).unwrap();
        let t0 = std::time::Instant::now();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert!(report.is_success(), "{report:?}");
        assert_eq!(report.tasks[0].attempts, 2);
    }

    #[test]
    fn stall_guard_reports_stalled_tasks() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("stuck", StageKind::Static, [], [a.id()], move |ctx| {
            std::thread::sleep(Duration::from_secs(30));
            ctx.put(a, 1)
        });
        wf.task("after", StageKind::Static, [a.id()], [b.id()], move |ctx| {
            ctx.put(b, 2)
        });
        let runner = Runner::new(wf).unwrap();
        let opts = RunOptions::with_threads(2).with_stall_timeout(Duration::from_millis(100));
        let t0 = std::time::Instant::now();
        let report = runner.run(&opts);
        assert!(t0.elapsed() < Duration::from_secs(10), "stall guard fired");
        assert!(matches!(report.tasks[0].status, TaskStatus::Stalled { .. }));
        assert_eq!(report.tasks[1].status, TaskStatus::Skipped);
        assert!(!report.is_success());
    }

    #[test]
    fn chaos_injection_fails_tasks_deterministically() {
        let run_with = |seed: u64| {
            let mut wf = Workflow::new();
            for i in 0..8 {
                let a = wf.value::<u32>(&format!("a{i}"));
                wf.task(
                    &format!("t{i}"),
                    StageKind::Static,
                    [],
                    [a.id()],
                    move |ctx| ctx.put(a, i),
                );
            }
            let runner = Runner::new(wf).unwrap();
            let opts = RunOptions::with_threads(4).with_chaos(ChaosConfig::failing(seed, 0.5));
            let report = runner.run(&opts);
            report
                .tasks
                .iter()
                .map(|t| t.status.is_ok())
                .collect::<Vec<_>>()
        };
        let a = run_with(11);
        let b = run_with(11);
        assert_eq!(a, b, "same seed, same fault schedule");
        assert!(
            a.iter().any(|ok| !ok),
            "p=0.5 over 8 tasks should fail some"
        );
    }

    #[test]
    fn chaos_with_retries_recovers() {
        // Each retry rolls fresh dice, so a generous attempt budget drives
        // per-task success probability to ~1 even at p=0.5.
        let mut wf = Workflow::new();
        for i in 0..8 {
            let a = wf.value::<u32>(&format!("a{i}"));
            wf.task(
                &format!("t{i}"),
                StageKind::Static,
                [],
                [a.id()],
                move |ctx| ctx.put(a, i),
            );
        }
        let runner = Runner::new(wf).unwrap();
        let opts = RunOptions::with_threads(4)
            .with_chaos(ChaosConfig::failing(11, 0.5))
            .retrying(RetryPolicy::transient(12).with_backoff(1, 4));
        let report = runner.run(&opts);
        assert!(report.is_success(), "{report:?}");
        assert!(report.total_attempts() > 8, "some retries must have fired");
    }

    #[test]
    fn manifest_checkpoints_and_resume_skips_succeeded_file_tasks() {
        let dir = temp_dir("resume");
        let manifest = dir.join("run-manifest.json");
        let out1 = dir.join("one.txt");
        let out2 = dir.join("two.txt");

        let runs = Arc::new(AtomicUsize::new(0));
        let build = |fail_second: bool, runs: Arc<AtomicUsize>| {
            let mut wf = Workflow::new();
            let f1 = wf.file(&out1);
            let f2 = wf.file(&out2);
            let f1c = f1.clone();
            let f2c = f2.clone();
            let r1 = Arc::clone(&runs);
            wf.task("write-one", StageKind::Static, [], [f1.id()], move |ctx| {
                r1.fetch_add(1, Ordering::SeqCst);
                std::fs::write(ctx.path(&f1c)?, "one").map_err(|e| e.to_string())
            });
            wf.task(
                "write-two",
                StageKind::Static,
                [f1.id()],
                [f2.id()],
                move |ctx| {
                    if fail_second {
                        return Err("backend down".to_owned());
                    }
                    std::fs::write(ctx.path(&f2c)?, "two").map_err(|e| e.to_string())
                },
            );
            wf
        };

        // First run: task one succeeds, task two fails; manifest records it.
        let r1 = Runner::new(build(true, Arc::clone(&runs))).unwrap();
        let report = r1.run(&RunOptions::with_threads(1).with_manifest(&manifest));
        assert!(!report.is_success());
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let m = RunManifest::load(&manifest).unwrap();
        assert_eq!(m.by_name("write-one").unwrap().status, "succeeded");
        assert_eq!(m.by_name("write-two").unwrap().status, "failed");

        // Resume: task one replays from the manifest, only task two runs.
        let r2 = Runner::new(build(false, Arc::clone(&runs))).unwrap();
        let report = r2.run(
            &RunOptions::with_threads(1)
                .with_manifest(&manifest)
                .resuming(),
        );
        assert!(report.is_success(), "{report:?}");
        assert_eq!(report.tasks[0].status, TaskStatus::Resumed);
        assert_eq!(report.tasks[1].status, TaskStatus::Succeeded);
        assert_eq!(runs.load(Ordering::SeqCst), 1, "write-one did not re-run");
        assert_eq!(report.resumed(), 1);

        // A deleted output invalidates the resume entry.
        std::fs::remove_file(&out1).unwrap();
        let r3 = Runner::new(build(false, Arc::clone(&runs))).unwrap();
        let report = r3.run(
            &RunOptions::with_threads(1)
                .with_manifest(&manifest)
                .resuming(),
        );
        assert!(report.is_success());
        assert_eq!(report.tasks[0].status, TaskStatus::Succeeded);
        assert_eq!(runs.load(Ordering::SeqCst), 2, "write-one re-ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerant_task_runs_after_upstream_failure() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let merged = wf.value::<String>("merged");
        wf.task("good", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put(a, 40)
        });
        wf.task("bad", StageKind::Static, [], [b.id()], |_| {
            Err("boom".to_owned())
        });
        let id = wf.task(
            "assemble",
            StageKind::Static,
            [a.id(), b.id()],
            [merged.id()],
            move |ctx| {
                let a_val = ctx.get_opt(a)?.map(|v| *v);
                let b_val = ctx.get_opt(b)?.map(|v| *v);
                ctx.put(merged, format!("{a_val:?}/{b_val:?}"))
            },
        );
        wf.tolerate_failures(id);
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(matches!(report.tasks[1].status, TaskStatus::Failed(_)));
        assert_eq!(report.tasks[2].status, TaskStatus::Succeeded, "{report:?}");
        let v = runner
            .store()
            .get_any(merged.id())
            .unwrap()
            .downcast::<String>()
            .unwrap();
        assert_eq!(*v, "Some(40)/None");
    }

    // ---- race-detection / determinism-digest tests ----

    #[test]
    fn aliased_file_writers_abort_with_counterexample() {
        // Two unordered tasks write FileArtifacts aliasing one path: passes
        // validate (distinct ids), races at runtime. A dependent of neither
        // racer must be skipped once the run aborts.
        let dir = temp_dir("race");
        let p = dir.join("shared.txt");
        let mut wf = Workflow::new();
        let f1 = wf.file(&p);
        let f2 = wf.file(&p);
        let f1c = f1.clone();
        let f2c = f2.clone();
        let gate = wf.value::<u32>("gate");
        let after = wf.value::<u32>("after");
        wf.task("left", StageKind::Static, [], [f1.id()], move |ctx| {
            std::fs::write(ctx.path(&f1c)?, "left").map_err(|e| e.to_string())
        });
        wf.task("right", StageKind::Static, [], [f2.id()], move |ctx| {
            std::fs::write(ctx.path(&f2c)?, "right").map_err(|e| e.to_string())
        });
        wf.task(
            "slow-gate",
            StageKind::Static,
            [],
            [gate.id()],
            move |ctx| {
                std::thread::sleep(Duration::from_millis(200));
                ctx.put(gate, 1)
            },
        );
        wf.task(
            "dependent",
            StageKind::Static,
            [gate.id()],
            [after.id()],
            move |ctx| ctx.put(after, 2),
        );
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1).detecting_races(true));
        assert!(!report.is_success());
        assert_eq!(
            report.race_violations.len(),
            1,
            "{:?}",
            report.race_violations
        );
        let v = &report.race_violations[0];
        assert!(v.contains("`left`") && v.contains("`right`"), "{v}");
        assert!(v.contains("shared.txt"), "{v}");
        assert!(
            v.contains("clock ["),
            "counterexample carries clock state: {v}"
        );
        let dependent = report.tasks.iter().find(|t| t.name == "dependent").unwrap();
        assert_eq!(dependent.status, TaskStatus::Skipped, "run aborted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ordered_writers_of_one_path_are_not_a_race() {
        let dir = temp_dir("race-ok");
        let p = dir.join("staged.txt");
        let mut wf = Workflow::new();
        let f1 = wf.file(&p);
        let f2 = wf.file(&p);
        let f1c = f1.clone();
        let f2c = f2.clone();
        let link = wf.value::<u32>("link");
        wf.task(
            "stage-one",
            StageKind::Static,
            [],
            [f1.id(), link.id()],
            move |ctx| {
                std::fs::write(ctx.path(&f1c)?, "one").map_err(|e| e.to_string())?;
                ctx.put(link, 1)
            },
        );
        wf.task(
            "stage-two",
            StageKind::Static,
            [link.id()],
            [f2.id()],
            move |ctx| std::fs::write(ctx.path(&f2c)?, "two").map_err(|e| e.to_string()),
        );
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2).detecting_races(true));
        assert!(report.is_success(), "{:?}", report.race_violations);
        assert!(report.race_violations.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_capture_tracked_values_and_files_sorted() {
        let dir = temp_dir("digest");
        let p = dir.join("artifact-file.txt");
        let mut wf = Workflow::new();
        let f = wf.file(&p);
        let fc = f.clone();
        let v = wf.value::<Vec<u32>>("zz-value");
        let untracked = wf.value::<u32>("untracked");
        wf.task("write-file", StageKind::Static, [], [f.id()], move |ctx| {
            std::fs::write(ctx.path(&fc)?, "stable bytes").map_err(|e| e.to_string())
        });
        wf.task("make-value", StageKind::Static, [], [v.id()], move |ctx| {
            ctx.put(v, vec![1, 2, 3])
        });
        wf.task(
            "noise",
            StageKind::Static,
            [],
            [untracked.id()],
            move |ctx| ctx.put(untracked, 9),
        );
        wf.track_digest(v);
        wf.retain(v.id());
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(report.is_success(), "{report:?}");
        // Files always digested; tracked value digested; untracked skipped.
        assert_eq!(report.artifacts.len(), 2, "{:?}", report.artifacts);
        assert_eq!(report.artifacts[0].kind, "file");
        assert!(report.artifacts[0].digest.is_some());
        assert_eq!(report.artifacts[1].name, "zz-value");
        let names: Vec<&str> = report.artifacts.iter().map(|a| a.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "artifact digests sorted by name");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_are_identical_across_thread_counts() {
        let run_with = |threads: usize| {
            let mut wf = Workflow::new();
            let mut parts = Vec::new();
            for i in 0..6u64 {
                let part = wf.value::<Vec<u64>>(&format!("part-{i}"));
                parts.push(part);
                wf.task(
                    &format!("make-{i}"),
                    StageKind::Static,
                    [],
                    [part.id()],
                    move |ctx| ctx.put(part, (0..100).map(|k| k * i).collect()),
                );
                wf.track_digest(part);
            }
            let merged = wf.value::<u64>("merged");
            let inputs: Vec<_> = parts.iter().map(|p| p.id()).collect();
            let parts2 = parts.clone();
            wf.task(
                "merge",
                StageKind::Static,
                inputs,
                [merged.id()],
                move |ctx| {
                    let mut sum = 0u64;
                    for p in &parts2 {
                        sum += ctx.get(*p)?.iter().sum::<u64>();
                    }
                    ctx.put(merged, sum)
                },
            );
            wf.track_digest(merged);
            wf.retain(merged.id());
            let runner = Runner::new(wf).unwrap();
            let report = runner.run(&RunOptions::with_threads(threads));
            assert!(report.is_success(), "{report:?}");
            report.artifacts
        };
        let serial = run_with(1);
        let parallel = run_with(4);
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "digests must not depend on concurrency");
    }
}
