//! The workflow executor: runs a validated graph on the work-stealing pool.
//!
//! Scheduling decisions stay on the caller's thread (a single-consumer event
//! loop over a completion channel); task bodies run on pool workers. This
//! mirrors Swift/T's engine/worker split and keeps the dependency bookkeeping
//! free of locks.

use crate::artifact::{ArtifactKindMeta, DataStore, TaskCtx};
use crate::graph::{GraphError, StageKind, Workflow};
use crate::pool::ThreadPool;
use crate::report::{RunReport, TaskReport, TaskStatus};
use crossbeam::channel;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// Execution options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads — the `-n N` of the paper's invocation.
    pub threads: usize,
    /// Skip tasks whose file outputs are all newer than their file inputs.
    pub use_cache: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2),
            use_cache: false,
        }
    }
}

impl RunOptions {
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    pub fn cached(mut self) -> Self {
        self.use_cache = true;
        self
    }
}

/// Owns a validated workflow and executes it; the [`DataStore`] outlives the
/// run so callers can collect produced values.
pub struct Runner {
    workflow: Arc<Workflow>,
    store: Arc<DataStore>,
    depth: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    Waiting,
    Running,
    Done,
}

struct Completion {
    task: usize,
    result: Result<(), String>,
    start_ms: f64,
    end_ms: f64,
    worker: Option<usize>,
}

impl Runner {
    /// Validate and wrap a workflow.
    pub fn new(workflow: Workflow) -> Result<Self, GraphError> {
        let depth = workflow.validate()?;
        let store = Arc::new(DataStore::new());
        for (id, value) in &workflow.provided {
            store.put_any(*id, Arc::clone(value));
        }
        Ok(Self {
            workflow: Arc::new(workflow),
            store,
            depth,
        })
    }

    /// The value store (inspect after `run` to collect results).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Task depths from validation (Figure 2 rows).
    pub fn depths(&self) -> &[usize] {
        &self.depth
    }

    /// Execute the workflow to completion and report per-task outcomes.
    pub fn run(&self, options: &RunOptions) -> RunReport {
        let n = self.workflow.tasks.len();
        let deps = self.workflow.dependencies();
        let mut remaining: Vec<usize> = deps.iter().map(|d| d.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ti, ds) in deps.iter().enumerate() {
            for d in ds {
                dependents[d.0].push(ti);
            }
        }

        let pool = ThreadPool::new(options.threads);
        let (tx, rx) = channel::unbounded::<Completion>();
        let run_start = Instant::now();

        let mut state = vec![NodeState::Waiting; n];
        let mut reports: Vec<TaskReport> = (0..n)
            .map(|i| TaskReport {
                name: self.workflow.tasks[i].name.clone(),
                kind: match self.workflow.tasks[i].kind {
                    StageKind::Static => "static",
                    StageKind::UserDefined => "user-defined",
                },
                status: TaskStatus::Skipped,
                start_ms: 0.0,
                end_ms: 0.0,
                worker: None,
                depth: self.depth[i],
            })
            .collect();
        let mut done = 0usize;

        // Submit every root (deterministic order). A root resolved
        // synchronously (cache hit) releases its dependents immediately.
        let mut initially_ready: Vec<usize> =
            (0..n).filter(|&i| remaining[i] == 0).collect();
        initially_ready.sort_unstable();
        for i in initially_ready {
            if self.dispatch(i, options, &pool, &tx, run_start, &mut state, &mut reports) {
                done += 1;
                done += self.release_dependents(
                    i,
                    &dependents,
                    &mut remaining,
                    options,
                    &pool,
                    &tx,
                    run_start,
                    &mut state,
                    &mut reports,
                );
            }
        }

        while done < n {
            let completion = match rx.recv_timeout(std::time::Duration::from_secs(3600)) {
                Ok(c) => c,
                Err(_) => break, // deadlock guard; report remaining as skipped
            };
            let i = completion.task;
            state[i] = NodeState::Done;
            done += 1;
            reports[i].start_ms = completion.start_ms;
            reports[i].end_ms = completion.end_ms;
            reports[i].worker = completion.worker;
            match completion.result {
                Ok(()) => {
                    reports[i].status = TaskStatus::Succeeded;
                    done += self.release_dependents(
                        i,
                        &dependents,
                        &mut remaining,
                        options,
                        &pool,
                        &tx,
                        run_start,
                        &mut state,
                        &mut reports,
                    );
                }
                Err(msg) => {
                    reports[i].status = TaskStatus::Failed(msg);
                    done += skip_transitively(i, &dependents, &mut state, &mut reports);
                }
            }
        }

        RunReport {
            threads: pool.size(),
            makespan_ms: run_start.elapsed().as_secs_f64() * 1000.0,
            tasks: reports,
        }
    }

    /// Release the dependents of a finished task, dispatching newly ready
    /// ones. Returns how many tasks were resolved synchronously (cache hits),
    /// including ones resolved recursively.
    #[allow(clippy::too_many_arguments)]
    fn release_dependents(
        &self,
        finished: usize,
        dependents: &[Vec<usize>],
        remaining: &mut [usize],
        options: &RunOptions,
        pool: &ThreadPool,
        tx: &channel::Sender<Completion>,
        run_start: Instant,
        state: &mut [NodeState],
        reports: &mut [TaskReport],
    ) -> usize {
        let mut resolved = 0usize;
        let mut stack = vec![finished];
        while let Some(cur) = stack.pop() {
            for &j in &dependents[cur] {
                if state[j] != NodeState::Waiting {
                    continue;
                }
                remaining[j] -= 1;
                if remaining[j] == 0 {
                    let sync =
                        self.dispatch(j, options, pool, tx, run_start, state, reports);
                    if sync {
                        resolved += 1;
                        stack.push(j);
                    }
                }
            }
        }
        resolved
    }

    /// Submit a ready task, or resolve it synchronously as a cache hit.
    /// Returns true when resolved synchronously.
    fn dispatch(
        &self,
        i: usize,
        options: &RunOptions,
        pool: &ThreadPool,
        tx: &channel::Sender<Completion>,
        run_start: Instant,
        state: &mut [NodeState],
        reports: &mut [TaskReport],
    ) -> bool {
        if options.use_cache && self.outputs_fresh(i) {
            state[i] = NodeState::Done;
            reports[i].status = TaskStatus::Cached;
            return true;
        }
        state[i] = NodeState::Running;
        let wf = Arc::clone(&self.workflow);
        let store = Arc::clone(&self.store);
        let tx = tx.clone();
        pool.execute(move || {
            let start_ms = run_start.elapsed().as_secs_f64() * 1000.0;
            let spec = &wf.tasks[i];
            let ctx = TaskCtx {
                store: &store,
                task_name: &spec.name,
                inputs: &spec.inputs,
                outputs: &spec.outputs,
            };
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| (spec.body)(&ctx)))
                .unwrap_or_else(|p| Err(panic_message(p)))
                .and_then(|()| verify_outputs(&wf, &store, i));
            let end_ms = run_start.elapsed().as_secs_f64() * 1000.0;
            let _ = tx.send(Completion {
                task: i,
                result,
                start_ms,
                end_ms,
                worker: current_worker_index(),
            });
        });
        false
    }

    /// Make-style freshness: all file outputs exist and are at least as new
    /// as every file input; only applicable to tasks whose outputs are all
    /// files (value outputs cannot be reconstructed from disk).
    fn outputs_fresh(&self, i: usize) -> bool {
        let spec = &self.workflow.tasks[i];
        if spec.outputs.is_empty() {
            return false;
        }
        let mtime = |id: &crate::artifact::ArtifactId| -> Option<std::time::SystemTime> {
            match &self.workflow.artifacts[id.0].kind {
                ArtifactKindMeta::File(p) => std::fs::metadata(p).and_then(|m| m.modified()).ok(),
                ArtifactKindMeta::Value => None,
            }
        };
        let mut newest_input: Option<std::time::SystemTime> = None;
        for input in &spec.inputs {
            match &self.workflow.artifacts[input.0].kind {
                ArtifactKindMeta::Value => return false,
                ArtifactKindMeta::File(_) => match mtime(input) {
                    Some(t) => {
                        newest_input = Some(newest_input.map_or(t, |n| n.max(t)));
                    }
                    None => return false, // missing input: let the task fail loudly
                },
            }
        }
        for output in &spec.outputs {
            match &self.workflow.artifacts[output.0].kind {
                ArtifactKindMeta::Value => return false,
                ArtifactKindMeta::File(_) => match mtime(output) {
                    Some(out_t) => {
                        if let Some(in_t) = newest_input {
                            if out_t < in_t {
                                return false;
                            }
                        }
                    }
                    None => return false,
                },
            }
        }
        true
    }
}

/// After a body returns Ok, every declared value output must exist in the
/// store and every declared file output must exist on disk.
fn verify_outputs(wf: &Workflow, store: &DataStore, i: usize) -> Result<(), String> {
    let spec = &wf.tasks[i];
    for out in &spec.outputs {
        match &wf.artifacts[out.0].kind {
            ArtifactKindMeta::Value => {
                if !store.contains(*out) {
                    return Err(format!(
                        "task {:?} completed without producing value artifact {:?}",
                        spec.name, wf.artifacts[out.0].name
                    ));
                }
            }
            ArtifactKindMeta::File(p) => {
                if !p.exists() {
                    return Err(format!(
                        "task {:?} completed without writing file {:?}",
                        spec.name,
                        p.display()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Mark every transitive dependent of `failed` as skipped. Returns the count.
fn skip_transitively(
    failed: usize,
    dependents: &[Vec<usize>],
    state: &mut [NodeState],
    reports: &mut [TaskReport],
) -> usize {
    let mut skipped = 0usize;
    let mut stack: Vec<usize> = dependents[failed].clone();
    while let Some(j) = stack.pop() {
        if state[j] != NodeState::Waiting {
            continue;
        }
        state[j] = NodeState::Done;
        reports[j].status = TaskStatus::Skipped;
        skipped += 1;
        stack.extend(dependents[j].iter().copied());
    }
    skipped
}

/// Worker index of the current pool thread (from its name), if any.
fn current_worker_index() -> Option<usize> {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("schedflow-worker-"))
        .and_then(|s| s.parse().ok())
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_linear_chain_in_order() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("produce", StageKind::Static, [], [a.id()], move |ctx| {
            ctx.put(a, 21)
        });
        wf.task("double", StageKind::Static, [a.id()], [b.id()], move |ctx| {
            let v = *ctx.get(a)?;
            ctx.put(b, v * 2)
        });
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(4));
        assert!(report.is_success(), "{report:?}");
        let out = runner
            .store()
            .get_any(b.id())
            .unwrap()
            .downcast::<u32>()
            .unwrap();
        assert_eq!(*out, 42);
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut wf = Workflow::new();
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let out = wf.value::<()>(&format!("o{i}"));
            let peak = Arc::clone(&peak);
            let cur = Arc::clone(&cur);
            wf.task(&format!("t{i}"), StageKind::Static, [], [out.id()], move |ctx| {
                let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                cur.fetch_sub(1, Ordering::SeqCst);
                ctx.put(Artifact::<()>::new(ctx.outputs[0]), ())
            });
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(4));
        assert!(report.is_success());
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "expected overlap, peak={}",
            peak.load(Ordering::SeqCst)
        );
        assert!(report.max_concurrency() >= 2);
    }

    use crate::artifact::Artifact;

    #[test]
    fn failure_skips_dependents_but_not_independents() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let c = wf.value::<u32>("c");
        wf.task("fail", StageKind::Static, [], [a.id()], |_| {
            Err("deliberate".to_owned())
        });
        wf.task("dep", StageKind::Static, [a.id()], [b.id()], move |ctx| {
            ctx.put(b, 1)
        });
        wf.task("indep", StageKind::Static, [], [c.id()], move |ctx| {
            ctx.put(c, 2)
        });
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(!report.is_success());
        assert_eq!(report.failed().len(), 1);
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.succeeded(), 1);
        assert!(runner.store().contains(c.id()));
        assert!(!runner.store().contains(b.id()));
    }

    #[test]
    fn panicking_task_reports_failure() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        wf.task("boom", StageKind::Static, [], [a.id()], |_| {
            panic!("kaboom");
        });
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        match &report.tasks[0].status {
            TaskStatus::Failed(msg) => assert!(msg.contains("kaboom")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn missing_declared_output_is_failure() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("never-produced");
        wf.task("lazy", StageKind::Static, [], [a.id()], |_| Ok(()));
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(1));
        assert!(!report.is_success());
    }

    #[test]
    fn provided_parameters_reach_tasks() {
        let mut wf = Workflow::new();
        let param = wf.value::<String>("param");
        let out = wf.value::<String>("out");
        wf.provide(param, "hello".to_owned());
        wf.task("use", StageKind::Static, [param.id()], [out.id()], move |ctx| {
            let p = ctx.get(param)?;
            ctx.put(out, format!("{p} world"))
        });
        let runner = Runner::new(wf).unwrap();
        assert!(runner.run(&RunOptions::with_threads(1)).is_success());
        let v = runner
            .store()
            .get_any(out.id())
            .unwrap()
            .downcast::<String>()
            .unwrap();
        assert_eq!(*v, "hello world");
    }

    #[test]
    fn file_cache_skips_fresh_outputs() {
        let dir = std::env::temp_dir().join(format!("schedflow-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("input.txt");
        let out_path = dir.join("output.txt");
        std::fs::write(&in_path, "data").unwrap();
        let _ = std::fs::remove_file(&out_path);

        let runs = Arc::new(AtomicUsize::new(0));
        let build = |runs: Arc<AtomicUsize>| {
            let mut wf = Workflow::new();
            let input = wf.file(&in_path);
            let output = wf.file(&out_path);
            let out_clone = output.clone();
            wf.task(
                "copy",
                StageKind::Static,
                [input.id()],
                [output.id()],
                move |ctx| {
                    runs.fetch_add(1, Ordering::SeqCst);
                    let p = ctx.path(&out_clone)?;
                    std::fs::write(p, "copied").map_err(|e| e.to_string())
                },
            );
            wf
        };

        // First run executes.
        let r1 = Runner::new(build(Arc::clone(&runs))).unwrap();
        assert!(r1.run(&RunOptions::with_threads(1).cached()).is_success());
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        // Second run is served from cache.
        let r2 = Runner::new(build(Arc::clone(&runs))).unwrap();
        let report = r2.run(&RunOptions::with_threads(1).cached());
        assert!(report.is_success());
        assert_eq!(report.cached(), 1);
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        // Touch the input newer than the output: re-executes.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&in_path, "data2").unwrap();
        let r3 = Runner::new(build(Arc::clone(&runs))).unwrap();
        let report = r3.run(&RunOptions::with_threads(1).cached());
        assert!(report.is_success());
        assert_eq!(runs.load(Ordering::SeqCst), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wide_fanout_completes_under_low_thread_count() {
        let mut wf = Workflow::new();
        let root = wf.value::<u64>("root");
        wf.task("root", StageKind::Static, [], [root.id()], move |ctx| {
            ctx.put(root, 5)
        });
        let mut leaves = Vec::new();
        for i in 0..50 {
            let leaf = wf.value::<u64>(&format!("leaf{i}"));
            leaves.push(leaf);
            wf.task(
                &format!("leaf{i}"),
                StageKind::Static,
                [root.id()],
                [leaf.id()],
                move |ctx| {
                    let v = *ctx.get(root)?;
                    ctx.put(leaf, v + i)
                },
            );
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(2));
        assert!(report.is_success());
        for (i, leaf) in leaves.iter().enumerate() {
            let v = runner
                .store()
                .get_any(leaf.id())
                .unwrap()
                .downcast::<u64>()
                .unwrap();
            assert_eq!(*v, 5 + i as u64);
        }
    }
}
