//! Graphviz DOT export of a workflow — regenerates the paper's Figure 2.
//!
//! Static stages render blue, user-defined (AI) stages orange, matching the
//! paper's color convention; tasks at the same DAG depth are ranked on one
//! row, visualizing "tasks in the same horizontal row may be executed
//! concurrently by the workflow".

use crate::artifact::ArtifactKindMeta;
use crate::graph::{StageKind, Workflow};

/// Options controlling the rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Include artifact nodes (ellipses) between tasks; otherwise edges are
    /// drawn task→task.
    pub show_artifacts: bool,
    /// Graph title.
    pub title: String,
    /// Per-task annotation lines (task name → extra label lines). Annotated
    /// tasks render with a red border and the lines appended to their label
    /// — this is how `schedflow-lint` draws diagnostics onto the graph.
    pub annotations: std::collections::BTreeMap<String, Vec<String>>,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            show_artifacts: false,
            title: "schedflow workflow".to_owned(),
            annotations: std::collections::BTreeMap::new(),
        }
    }
}

/// Border color of annotated (diagnosed) task nodes.
const ANNOTATION_COLOR: &str = "#cc0000";

const STATIC_FILL: &str = "#cfe2f3"; // blue — fixed analysis stages
const USER_FILL: &str = "#fce5cd"; // orange — user-defined AI stages

/// Render the workflow graph as Graphviz DOT.
///
/// Fails only if the graph is invalid (cycle, duplicate writer, …).
pub fn to_dot(wf: &Workflow, options: &DotOptions) -> Result<String, crate::graph::GraphError> {
    let depth = wf.validate()?;
    let mut out = String::with_capacity(4096);
    out.push_str("digraph workflow {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str(&format!("  label={};\n", quote(&options.title)));
    out.push_str("  node [fontname=\"Helvetica\"];\n");

    // Task nodes.
    for (i, t) in wf.tasks.iter().enumerate() {
        let fill = match t.kind {
            StageKind::Static => STATIC_FILL,
            StageKind::UserDefined => USER_FILL,
        };
        match options.annotations.get(&t.name).filter(|a| !a.is_empty()) {
            Some(lines) => {
                let label = format!("{}\n{}", t.name, lines.join("\n"));
                out.push_str(&format!(
                    "  t{i} [label={}, shape=box, style=filled, fillcolor=\"{fill}\", \
                     color=\"{ANNOTATION_COLOR}\", penwidth=2];\n",
                    quote(&label)
                ));
            }
            None => out.push_str(&format!(
                "  t{i} [label={}, shape=box, style=filled, fillcolor=\"{fill}\"];\n",
                quote(&t.name)
            )),
        }
    }

    if options.show_artifacts {
        // Artifact nodes and task→artifact→task edges.
        let mut used = vec![false; wf.artifacts.len()];
        for t in &wf.tasks {
            for a in t.inputs.iter().chain(t.outputs.iter()) {
                used[a.0] = true;
            }
        }
        for (ai, meta) in wf.artifacts.iter().enumerate() {
            if !used[ai] {
                continue;
            }
            let shape = match meta.kind {
                ArtifactKindMeta::File(_) => "note",
                ArtifactKindMeta::Value => "ellipse",
            };
            out.push_str(&format!(
                "  a{ai} [label={}, shape={shape}, fontsize=10];\n",
                quote(&meta.name)
            ));
        }
        for (i, t) in wf.tasks.iter().enumerate() {
            for a in &t.inputs {
                out.push_str(&format!("  a{} -> t{i};\n", a.0));
            }
            for a in &t.outputs {
                out.push_str(&format!("  t{i} -> a{};\n", a.0));
            }
        }
    } else {
        // Direct task→task dependency edges.
        for (i, deps) in wf.dependencies().iter().enumerate() {
            for d in deps {
                out.push_str(&format!("  t{} -> t{i};\n", d.0));
            }
        }
    }

    // Same-rank rows per depth (the Figure 2 horizontal rows).
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    for row in 0..=max_depth {
        let members: Vec<String> = depth
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == row)
            .map(|(i, _)| format!("t{i}"))
            .collect();
        if members.len() > 1 {
            out.push_str(&format!("  {{ rank=same; {}; }}\n", members.join("; ")));
        }
    }

    out.push_str("}\n");
    Ok(out)
}

fn quote(s: &str) -> String {
    format!(
        "\"{}\"",
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageKind;

    fn sample() -> Workflow {
        let mut wf = Workflow::new();
        let raw = wf.value::<String>("raw");
        let csv = wf.value::<String>("csv");
        let plot = wf.value::<String>("plot");
        let insight = wf.value::<String>("insight");
        wf.task("obtain", StageKind::Static, [], [raw.id()], |_| Ok(()));
        wf.task("curate", StageKind::Static, [raw.id()], [csv.id()], |_| {
            Ok(())
        });
        wf.task("plot", StageKind::Static, [csv.id()], [plot.id()], |_| {
            Ok(())
        });
        wf.task(
            "llm-insight",
            StageKind::UserDefined,
            [plot.id()],
            [insight.id()],
            |_| Ok(()),
        );
        wf
    }

    #[test]
    fn renders_tasks_with_stage_colors() {
        let dot = to_dot(&sample(), &DotOptions::default()).unwrap();
        assert!(dot.contains("digraph workflow"));
        assert!(dot.contains("\"obtain\""));
        assert!(dot.contains(STATIC_FILL));
        assert!(dot.contains(USER_FILL));
    }

    #[test]
    fn task_edges_follow_dependencies() {
        let dot = to_dot(&sample(), &DotOptions::default()).unwrap();
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("t1 -> t2"));
        assert!(dot.contains("t2 -> t3"));
    }

    #[test]
    fn artifact_mode_inserts_data_nodes() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                show_artifacts: true,
                title: "fig2".into(),
                ..DotOptions::default()
            },
        )
        .unwrap();
        assert!(dot.contains("\"raw\""));
        assert!(dot.contains("a0 -> t1"));
        assert!(dot.contains("t0 -> a0"));
        assert!(dot.contains("label=\"fig2\""));
    }

    #[test]
    fn parallel_tasks_share_rank() {
        let mut wf = sample();
        // Add a second consumer of csv → same depth as "plot".
        let other = wf.value::<String>("other");
        {
            let csv_id = crate::artifact::ArtifactId(1);
            wf.task("plot2", StageKind::Static, [csv_id], [other.id()], |_| {
                Ok(())
            });
        }
        let dot = to_dot(&wf, &DotOptions::default()).unwrap();
        assert!(dot.contains("rank=same"));
    }

    #[test]
    fn invalid_graph_errors() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("x", StageKind::Static, [b.id()], [a.id()], |_| Ok(()));
        wf.task("y", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        assert!(to_dot(&wf, &DotOptions::default()).is_err());
    }

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\nb"), "\"a\\nb\"");
    }

    #[test]
    fn annotations_highlight_tasks() {
        let mut options = DotOptions::default();
        options.annotations.insert(
            "curate".to_owned(),
            vec!["SF0101 missing wait_s".to_owned()],
        );
        let dot = to_dot(&sample(), &options).unwrap();
        assert!(dot.contains("SF0101 missing wait_s"));
        assert!(dot.contains(ANNOTATION_COLOR));
        assert!(dot.contains("penwidth=2"));
        // Only the annotated task gets the highlight border.
        assert_eq!(dot.matches("penwidth=2").count(), 1);
    }
}
