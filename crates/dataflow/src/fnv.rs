//! The workspace's one FNV-1a implementation.
//!
//! FNV-1a shows up everywhere a stable, dependency-free 64-bit digest is
//! needed: durable-store checksum footers, determinism-verifier artifact
//! digests, manifest task fingerprints, chaos seed derivation, and logical
//! plan fingerprints ([`schedflow-frame`'s `plan` module]). Those call sites
//! used to carry their own copies of the fold, and the dominant copy had
//! mistyped the prime with an extra zero nibble (`0x1000000001b3`), hashing
//! with a non-FNV constant. This module is the single shared definition they
//! all reuse, with the standard 64-bit parameters: offset basis
//! `0xcbf29ce484222325`, prime `0x100000001b3`. Digests are only ever
//! compared against digests produced in-process by this same fold (store
//! checksums are rewritten on write, mismatches quarantine and rebuild), so
//! correcting the constant is safe.

/// FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime (`2^40 + 2^8 + 0xb3`).
pub const PRIME: u64 = 0x100_0000_01b3;

/// Streaming FNV-1a hasher for digests built from several fields (plan
/// canonical forms, task fingerprints) without intermediate allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Fold raw bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Fold a string field, terminated by a `0xff` separator byte (which
    /// cannot occur in UTF-8), so `("ab","c")` and `("a","bc")` digest
    /// differently.
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update(s.as_bytes());
        self.update(&[0xff])
    }

    /// Fold a `u64` field (little-endian bytes).
    pub fn update_u64(&mut self, x: u64) -> &mut Self {
        self.update(&x.to_le_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over raw bytes — content digests (checksum footers, determinism
/// verifier artifacts).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// FNV-1a over a string — stable name hashing for seeds and fingerprints.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a/64 test vectors.
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_str("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a_str("foobar"));
    }

    #[test]
    fn field_separator_disambiguates() {
        let mut a = Fnv1a::new();
        a.update_str("ab").update_str("c");
        let mut b = Fnv1a::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
