//! Artifacts: the data slots flowing between workflow tasks.
//!
//! Swift/T infers concurrency from *data* dependencies — a task that reads a
//! file another task writes runs after it; tasks with disjoint data run
//! concurrently. Artifacts model those data slots. Two kinds exist:
//!
//! * **value artifacts** — typed in-memory values (a frame, a chart spec),
//!   stored in the run's [`DataStore`] as `Arc<dyn Any>`;
//! * **file artifacts** — paths on disk, which additionally support
//!   make-style freshness caching.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Untyped artifact identity within one [`crate::graph::Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub(crate) usize);

impl ArtifactId {
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A typed handle to a value artifact.
pub struct Artifact<T> {
    pub(crate) id: ArtifactId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Artifact<T> {
    pub(crate) fn new(id: ArtifactId) -> Self {
        Self {
            id,
            _marker: PhantomData,
        }
    }

    pub fn id(&self) -> ArtifactId {
        self.id
    }
}

impl<T> Clone for Artifact<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Artifact<T> {}

/// A handle to a file artifact.
#[derive(Debug, Clone)]
pub struct FileArtifact {
    pub(crate) id: ArtifactId,
    pub(crate) path: PathBuf,
}

impl FileArtifact {
    pub fn id(&self) -> ArtifactId {
        self.id
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Metadata the graph keeps per artifact.
#[derive(Debug, Clone)]
pub(crate) struct ArtifactMeta {
    pub name: String,
    pub kind: ArtifactKindMeta,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ArtifactKindMeta {
    Value,
    File(PathBuf),
}

/// Shared store of produced artifact values for one run.
#[derive(Default)]
pub struct DataStore {
    values: Mutex<HashMap<usize, Arc<dyn Any + Send + Sync>>>,
}

impl DataStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_any(&self, id: ArtifactId, value: Arc<dyn Any + Send + Sync>) {
        self.values.lock().insert(id.0, value);
    }

    pub fn get_any(&self, id: ArtifactId) -> Option<Arc<dyn Any + Send + Sync>> {
        self.values.lock().get(&id.0).cloned()
    }

    pub fn contains(&self, id: ArtifactId) -> bool {
        self.values.lock().contains_key(&id.0)
    }
}

/// The context handed to a running task body: typed access to its inputs and
/// outputs.
pub struct TaskCtx<'a> {
    pub(crate) store: &'a DataStore,
    pub(crate) task_name: &'a str,
    pub(crate) inputs: &'a [ArtifactId],
    pub(crate) outputs: &'a [ArtifactId],
}

impl<'a> TaskCtx<'a> {
    /// Read a declared input value artifact.
    pub fn get<T: Send + Sync + 'static>(&self, a: Artifact<T>) -> Result<Arc<T>, String> {
        if !self.inputs.contains(&a.id) {
            return Err(format!(
                "task {:?} read artifact #{} it does not declare as input",
                self.task_name, a.id.0
            ));
        }
        let any = self
            .store
            .get_any(a.id)
            .ok_or_else(|| format!("artifact #{} not yet produced", a.id.0))?;
        any.downcast::<T>()
            .map_err(|_| format!("artifact #{} has unexpected type", a.id.0))
    }

    /// Write a declared output value artifact.
    pub fn put<T: Send + Sync + 'static>(&self, a: Artifact<T>, value: T) -> Result<(), String> {
        if !self.outputs.contains(&a.id) {
            return Err(format!(
                "task {:?} wrote artifact #{} it does not declare as output",
                self.task_name, a.id.0
            ));
        }
        self.store.put_any(a.id, Arc::new(value));
        Ok(())
    }

    /// Read a declared input value artifact that may be absent — the
    /// degraded-mode accessor for failure-tolerant tasks (see
    /// [`crate::graph::Workflow::tolerate_failures`]): when the producing
    /// task failed, `Ok(None)` is returned instead of an error. Reading an
    /// undeclared artifact is still a bug and still errors.
    pub fn get_opt<T: Send + Sync + 'static>(
        &self,
        a: Artifact<T>,
    ) -> Result<Option<Arc<T>>, String> {
        if !self.inputs.contains(&a.id) {
            return Err(format!(
                "task {:?} read artifact #{} it does not declare as input",
                self.task_name, a.id.0
            ));
        }
        match self.store.get_any(a.id) {
            None => Ok(None),
            Some(any) => any
                .downcast::<T>()
                .map(Some)
                .map_err(|_| format!("artifact #{} has unexpected type", a.id.0)),
        }
    }

    /// Path of a declared input or output file artifact.
    pub fn path<'f>(&self, f: &'f FileArtifact) -> Result<&'f Path, String> {
        if self.inputs.contains(&f.id) || self.outputs.contains(&f.id) {
            Ok(&f.path)
        } else {
            Err(format!(
                "task {:?} accessed file artifact #{} it does not declare",
                self.task_name, f.id.0
            ))
        }
    }

    /// Name of the running task (for log messages).
    pub fn task_name(&self) -> &str {
        self.task_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trips_typed_values() {
        let store = DataStore::new();
        let id = ArtifactId(0);
        store.put_any(id, Arc::new(vec![1u32, 2, 3]));
        let v = store.get_any(id).unwrap().downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(store.contains(id));
        assert!(!store.contains(ArtifactId(1)));
    }

    #[test]
    fn ctx_enforces_declared_inputs() {
        let store = DataStore::new();
        let declared = ArtifactId(0);
        let undeclared = Artifact::<String>::new(ArtifactId(9));
        store.put_any(ArtifactId(9), Arc::new("hi".to_owned()));
        let ctx = TaskCtx {
            store: &store,
            task_name: "t",
            inputs: &[declared],
            outputs: &[],
        };
        assert!(ctx.get(undeclared).is_err());
    }

    #[test]
    fn ctx_enforces_declared_outputs() {
        let store = DataStore::new();
        let ctx = TaskCtx {
            store: &store,
            task_name: "t",
            inputs: &[],
            outputs: &[ArtifactId(1)],
        };
        assert!(ctx.put(Artifact::<u32>::new(ArtifactId(1)), 5).is_ok());
        assert!(ctx.put(Artifact::<u32>::new(ArtifactId(2)), 5).is_err());
    }

    #[test]
    fn ctx_detects_type_mismatch() {
        let store = DataStore::new();
        let id = ArtifactId(3);
        store.put_any(id, Arc::new(42u64));
        let ctx = TaskCtx {
            store: &store,
            task_name: "t",
            inputs: &[id],
            outputs: &[],
        };
        assert!(ctx.get(Artifact::<String>::new(id)).is_err());
        assert_eq!(*ctx.get(Artifact::<u64>::new(id)).unwrap(), 42);
    }
}
