//! Artifacts: the data slots flowing between workflow tasks.
//!
//! Swift/T infers concurrency from *data* dependencies — a task that reads a
//! file another task writes runs after it; tasks with disjoint data run
//! concurrently. Artifacts model those data slots. Two kinds exist:
//!
//! * **value artifacts** — typed in-memory values (a frame, a chart spec),
//!   stored in the run's [`DataStore`] as `Arc<dyn Any>`;
//! * **file artifacts** — paths on disk, which additionally support
//!   make-style freshness caching.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Untyped artifact identity within one [`crate::graph::Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub(crate) usize);

impl ArtifactId {
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A typed handle to a value artifact.
pub struct Artifact<T> {
    pub(crate) id: ArtifactId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Artifact<T> {
    pub(crate) fn new(id: ArtifactId) -> Self {
        Self {
            id,
            _marker: PhantomData,
        }
    }

    pub fn id(&self) -> ArtifactId {
        self.id
    }
}

impl<T> Clone for Artifact<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Artifact<T> {}

/// A handle to a file artifact.
#[derive(Debug, Clone)]
pub struct FileArtifact {
    pub(crate) id: ArtifactId,
    pub(crate) path: PathBuf,
}

impl FileArtifact {
    pub fn id(&self) -> ArtifactId {
        self.id
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Metadata the graph keeps per artifact.
#[derive(Debug, Clone)]
pub(crate) struct ArtifactMeta {
    pub name: String,
    pub kind: ArtifactKindMeta,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ArtifactKindMeta {
    Value,
    File(PathBuf),
}

/// One stored value plus its advertised payload size.
struct Slot {
    value: Arc<dyn Any + Send + Sync>,
    bytes: u64,
}

/// Shared store of produced artifact values for one run.
///
/// Besides the `Arc<dyn Any>` slots, the store does the run's memory
/// accounting: every value carries an advertised payload size (zero when the
/// producer didn't declare one), the store tracks the currently resident sum,
/// and the high-water mark survives removals — that peak is what the run
/// report surfaces as `peak_resident_bytes`.
#[derive(Default)]
pub struct DataStore {
    values: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    slots: HashMap<usize, Slot>,
    resident: u64,
    peak: u64,
}

impl DataStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_any(&self, id: ArtifactId, value: Arc<dyn Any + Send + Sync>) {
        self.put_any_sized(id, value, 0);
    }

    /// Store a value advertising its payload size (feeds the run's
    /// resident/peak accounting).
    pub fn put_any_sized(&self, id: ArtifactId, value: Arc<dyn Any + Send + Sync>, bytes: u64) {
        let mut inner = self.values.lock();
        if let Some(old) = inner.slots.insert(id.0, Slot { value, bytes }) {
            inner.resident -= old.bytes;
        }
        inner.resident += bytes;
        inner.peak = inner.peak.max(inner.resident);
    }

    pub fn get_any(&self, id: ArtifactId) -> Option<Arc<dyn Any + Send + Sync>> {
        self.values
            .lock()
            .slots
            .get(&id.0)
            .map(|s| Arc::clone(&s.value))
    }

    /// Advertised payload size of a stored value (zero if absent or unsized).
    pub fn bytes_of(&self, id: ArtifactId) -> u64 {
        self.values.lock().slots.get(&id.0).map_or(0, |s| s.bytes)
    }

    /// Drop a value, releasing the engine's `Arc` (the lifetime-tracking
    /// hook: the executor calls this once an artifact's last consumer has
    /// resolved). Returns the bytes released.
    pub fn remove(&self, id: ArtifactId) -> u64 {
        let mut inner = self.values.lock();
        match inner.slots.remove(&id.0) {
            Some(slot) => {
                inner.resident -= slot.bytes;
                slot.bytes
            }
            None => 0,
        }
    }

    pub fn contains(&self, id: ArtifactId) -> bool {
        self.values.lock().slots.contains_key(&id.0)
    }

    /// Currently resident advertised bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.values.lock().resident
    }

    /// High-water mark of resident advertised bytes over the store's life.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.values.lock().peak
    }
}

/// The context handed to a running task body: typed access to its inputs and
/// outputs, plus per-task byte accounting (every `get` adds the artifact's
/// advertised size to `bytes_in`, every `put` to `bytes_out`).
pub struct TaskCtx<'a> {
    pub(crate) store: &'a DataStore,
    pub(crate) task_name: &'a str,
    pub(crate) inputs: &'a [ArtifactId],
    pub(crate) outputs: &'a [ArtifactId],
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    /// Logical-plan optimizer accounting the body recorded (merged across
    /// [`TaskCtx::record_plan_stats`] calls), harvested into the task report.
    pub(crate) plan: Mutex<Option<crate::report::PlanStats>>,
    /// When race detection is on: the run's happens-before tracker and this
    /// task's index, so every access through this context is recorded.
    pub(crate) race: Option<(Arc<crate::race::RaceTracker>, usize)>,
    /// Static cost estimate declared for this task's plan
    /// ([`crate::Workflow::with_plan_estimate`]), visible to the body so it
    /// can cross-check its own cardinalities while executing.
    pub(crate) estimate: Option<crate::report::PlanEstimate>,
}

impl<'a> TaskCtx<'a> {
    pub(crate) fn new(
        store: &'a DataStore,
        task_name: &'a str,
        inputs: &'a [ArtifactId],
        outputs: &'a [ArtifactId],
    ) -> Self {
        Self {
            store,
            task_name,
            inputs,
            outputs,
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            plan: Mutex::new(None),
            race: None,
            estimate: None,
        }
    }

    /// The static plan estimate declared for this task, if any — the interval
    /// the SF08xx cost analysis predicted for the plan the body is about to
    /// execute.
    pub fn plan_estimate(&self) -> Option<&crate::report::PlanEstimate> {
        self.estimate.as_ref()
    }

    pub(crate) fn with_estimate(mut self, estimate: Option<crate::report::PlanEstimate>) -> Self {
        self.estimate = estimate;
        self
    }

    /// Record logical-plan optimizer accounting for this task (merged when
    /// called repeatedly — a stage may execute several plans). Surfaced in
    /// [`crate::report::TaskReport::plan`].
    pub fn record_plan_stats(&self, stats: crate::report::PlanStats) {
        let mut slot = self.plan.lock();
        match slot.as_mut() {
            Some(acc) => acc.merge(&stats),
            None => *slot = Some(stats),
        }
    }

    /// Harvest the recorded plan accounting (executor hook).
    pub(crate) fn take_plan_stats(&self) -> Option<crate::report::PlanStats> {
        self.plan.lock().take()
    }

    pub(crate) fn with_race(mut self, tracker: Arc<crate::race::RaceTracker>, task: usize) -> Self {
        self.race = Some((tracker, task));
        self
    }

    fn note_access(&self, id: ArtifactId, write: bool) {
        if let Some((tracker, task)) = &self.race {
            tracker.record(*task, id, write);
        }
    }

    /// Read a declared input value artifact.
    pub fn get<T: Send + Sync + 'static>(&self, a: Artifact<T>) -> Result<Arc<T>, String> {
        if !self.inputs.contains(&a.id) {
            return Err(format!(
                "task {:?} read artifact #{} it does not declare as input",
                self.task_name, a.id.0
            ));
        }
        self.note_access(a.id, false);
        let any = self
            .store
            .get_any(a.id)
            .ok_or_else(|| format!("artifact #{} not yet produced", a.id.0))?;
        self.bytes_in
            .fetch_add(self.store.bytes_of(a.id), Ordering::Relaxed);
        any.downcast::<T>()
            .map_err(|_| format!("artifact #{} has unexpected type", a.id.0))
    }

    /// Write a declared output value artifact.
    pub fn put<T: Send + Sync + 'static>(&self, a: Artifact<T>, value: T) -> Result<(), String> {
        self.put_sized(a, value, 0)
    }

    /// Write a declared output value artifact, advertising its payload size
    /// for the run's memory accounting (e.g. `frame.estimated_bytes()`).
    pub fn put_sized<T: Send + Sync + 'static>(
        &self,
        a: Artifact<T>,
        value: T,
        bytes: u64,
    ) -> Result<(), String> {
        if !self.outputs.contains(&a.id) {
            return Err(format!(
                "task {:?} wrote artifact #{} it does not declare as output",
                self.task_name, a.id.0
            ));
        }
        self.note_access(a.id, true);
        self.store.put_any_sized(a.id, Arc::new(value), bytes);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Read a declared input value artifact that may be absent — the
    /// degraded-mode accessor for failure-tolerant tasks (see
    /// [`crate::graph::Workflow::tolerate_failures`]): when the producing
    /// task failed, `Ok(None)` is returned instead of an error. Reading an
    /// undeclared artifact is still a bug and still errors.
    pub fn get_opt<T: Send + Sync + 'static>(
        &self,
        a: Artifact<T>,
    ) -> Result<Option<Arc<T>>, String> {
        if !self.inputs.contains(&a.id) {
            return Err(format!(
                "task {:?} read artifact #{} it does not declare as input",
                self.task_name, a.id.0
            ));
        }
        self.note_access(a.id, false);
        match self.store.get_any(a.id) {
            None => Ok(None),
            Some(any) => {
                self.bytes_in
                    .fetch_add(self.store.bytes_of(a.id), Ordering::Relaxed);
                any.downcast::<T>()
                    .map(Some)
                    .map_err(|_| format!("artifact #{} has unexpected type", a.id.0))
            }
        }
    }

    /// Path of a declared input or output file artifact.
    pub fn path<'f>(&self, f: &'f FileArtifact) -> Result<&'f Path, String> {
        if self.inputs.contains(&f.id) || self.outputs.contains(&f.id) {
            // Declared outputs are writes; pure inputs are reads.
            self.note_access(f.id, self.outputs.contains(&f.id));
            Ok(&f.path)
        } else {
            Err(format!(
                "task {:?} accessed file artifact #{} it does not declare",
                self.task_name, f.id.0
            ))
        }
    }

    /// Name of the running task (for log messages).
    pub fn task_name(&self) -> &str {
        self.task_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trips_typed_values() {
        let store = DataStore::new();
        let id = ArtifactId(0);
        store.put_any(id, Arc::new(vec![1u32, 2, 3]));
        let v = store.get_any(id).unwrap().downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(store.contains(id));
        assert!(!store.contains(ArtifactId(1)));
    }

    #[test]
    fn ctx_enforces_declared_inputs() {
        let store = DataStore::new();
        let declared = ArtifactId(0);
        let undeclared = Artifact::<String>::new(ArtifactId(9));
        store.put_any(ArtifactId(9), Arc::new("hi".to_owned()));
        let inputs = [declared];
        let ctx = TaskCtx::new(&store, "t", &inputs, &[]);
        assert!(ctx.get(undeclared).is_err());
    }

    #[test]
    fn ctx_enforces_declared_outputs() {
        let store = DataStore::new();
        let ctx = TaskCtx::new(&store, "t", &[], &[ArtifactId(1)]);
        assert!(ctx.put(Artifact::<u32>::new(ArtifactId(1)), 5).is_ok());
        assert!(ctx.put(Artifact::<u32>::new(ArtifactId(2)), 5).is_err());
    }

    #[test]
    fn ctx_detects_type_mismatch() {
        let store = DataStore::new();
        let id = ArtifactId(3);
        store.put_any(id, Arc::new(42u64));
        let inputs = [id];
        let ctx = TaskCtx::new(&store, "t", &inputs, &[]);
        assert!(ctx.get(Artifact::<String>::new(id)).is_err());
        assert_eq!(*ctx.get(Artifact::<u64>::new(id)).unwrap(), 42);
    }

    #[test]
    fn store_accounts_resident_and_peak_bytes() {
        let store = DataStore::new();
        store.put_any_sized(ArtifactId(0), Arc::new(1u8), 100);
        store.put_any_sized(ArtifactId(1), Arc::new(2u8), 250);
        assert_eq!(store.resident_bytes(), 350);
        assert_eq!(store.peak_resident_bytes(), 350);
        assert_eq!(store.bytes_of(ArtifactId(1)), 250);
        assert_eq!(store.remove(ArtifactId(0)), 100);
        assert!(!store.contains(ArtifactId(0)));
        assert_eq!(store.resident_bytes(), 250);
        assert_eq!(store.peak_resident_bytes(), 350, "peak survives removal");
        // Overwriting replaces, not accumulates.
        store.put_any_sized(ArtifactId(1), Arc::new(3u8), 50);
        assert_eq!(store.resident_bytes(), 50);
    }

    #[test]
    fn ctx_counts_bytes_in_and_out() {
        use std::sync::atomic::Ordering;
        let store = DataStore::new();
        let input = ArtifactId(0);
        let output = ArtifactId(1);
        store.put_any_sized(input, Arc::new(7u32), 64);
        let inputs = [input];
        let outputs = [output];
        let ctx = TaskCtx::new(&store, "t", &inputs, &outputs);
        assert_eq!(*ctx.get(Artifact::<u32>::new(input)).unwrap(), 7);
        ctx.put_sized(Artifact::<u32>::new(output), 9, 128).unwrap();
        assert_eq!(ctx.bytes_in.load(Ordering::Relaxed), 64);
        assert_eq!(ctx.bytes_out.load(Ordering::Relaxed), 128);
    }
}
