//! The task error taxonomy and retry policies.
//!
//! The workflow runs unattended against dependencies of very different
//! reliability: an in-process accounting store (never flaky), the filesystem
//! (rarely flaky), and — in the paper's deployment — a hosted LLM endpoint
//! (the least reliable stage of the whole pipeline). A single `String` error
//! cannot distinguish "try again" from "this will never work", so task
//! bodies classify their failures and [`RetryPolicy`] decides which classes
//! are worth re-executing, how many times, and with what backoff.

/// Classified failure of one task attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// Likely to succeed on retry: network hiccups, busy backends, transient
    /// I/O. This is the default classification for plain `String` errors.
    Transient(String),
    /// Retrying cannot help: bad input, logic error, missing declared output.
    Permanent(String),
    /// The attempt exceeded its deadline (detected by the executor watchdog;
    /// the elapsed time is measured from dispatch).
    Timeout { elapsed_ms: u64 },
    /// The body panicked.
    Panic(String),
}

impl TaskError {
    /// Convenience constructors.
    pub fn transient(msg: impl Into<String>) -> Self {
        TaskError::Transient(msg.into())
    }

    pub fn permanent(msg: impl Into<String>) -> Self {
        TaskError::Permanent(msg.into())
    }

    /// Short class name (for reports and logs).
    pub fn class(&self) -> &'static str {
        match self {
            TaskError::Transient(_) => "transient",
            TaskError::Permanent(_) => "permanent",
            TaskError::Timeout { .. } => "timeout",
            TaskError::Panic(_) => "panic",
        }
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Transient(m) => write!(f, "transient: {m}"),
            TaskError::Permanent(m) => write!(f, "permanent: {m}"),
            TaskError::Timeout { elapsed_ms } => {
                write!(f, "timeout after {elapsed_ms} ms")
            }
            TaskError::Panic(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Untyped `String` errors (the pre-taxonomy body signature) classify as
/// transient: with the default no-retry policy that changes nothing, and
/// under an explicit retry policy "unknown" failures get the benefit of the
/// doubt the way a flaky hosted backend deserves.
impl From<String> for TaskError {
    fn from(msg: String) -> Self {
        TaskError::Transient(msg)
    }
}

impl From<&str> for TaskError {
    fn from(msg: &str) -> Self {
        TaskError::Transient(msg.to_owned())
    }
}

/// Which error classes a policy re-executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOn {
    /// Retry nothing (every failure is terminal).
    Never,
    /// Retry only [`TaskError::Transient`].
    Transient,
    /// Retry transient failures and watchdog timeouts.
    TransientAndTimeout,
    /// Retry everything, including panics.
    Any,
}

impl RetryOn {
    pub fn covers(&self, error: &TaskError) -> bool {
        match self {
            RetryOn::Never => false,
            RetryOn::Transient => matches!(error, TaskError::Transient(_)),
            RetryOn::TransientAndTimeout => {
                matches!(error, TaskError::Transient(_) | TaskError::Timeout { .. })
            }
            RetryOn::Any => true,
        }
    }
}

/// Per-task retry behaviour: attempt budget, exponential backoff with
/// deterministic seeded jitter, and the error classes worth retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base_delay_ms * 2^(k-1)`,
    /// capped at `max_delay_ms`, then jittered.
    pub base_delay_ms: u64,
    pub max_delay_ms: u64,
    /// Fraction of the delay randomized: the final delay is uniform in
    /// `[d*(1-jitter), d*(1+jitter)]`. Clamped to `[0, 1]`.
    pub jitter: f64,
    pub retry_on: RetryOn,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: every failure is terminal (the pre-fault-tolerance
    /// behaviour, and the engine default).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter: 0.0,
            retry_on: RetryOn::Never,
        }
    }

    /// Retry transient failures up to `max_attempts` total attempts with a
    /// short exponential backoff.
    pub fn transient(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_ms: 10,
            max_delay_ms: 2_000,
            jitter: 0.5,
            retry_on: RetryOn::Transient,
        }
    }

    pub fn with_backoff(mut self, base_delay_ms: u64, max_delay_ms: u64) -> Self {
        self.base_delay_ms = base_delay_ms;
        self.max_delay_ms = max_delay_ms.max(base_delay_ms);
        self
    }

    pub fn retrying(mut self, on: RetryOn) -> Self {
        self.retry_on = on;
        self
    }

    /// Should a failure on attempt `attempt` (1-based) be retried?
    pub fn should_retry(&self, error: &TaskError, attempt: u32) -> bool {
        attempt < self.max_attempts.max(1) && self.retry_on.covers(error)
    }

    /// Backoff before the retry following failed attempt `attempt`
    /// (1-based), deterministically jittered by `seed`.
    pub fn delay_ms(&self, attempt: u32, seed: u64) -> u64 {
        if self.base_delay_ms == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms.max(self.base_delay_ms));
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return raw;
        }
        let u = unit_f64(splitmix64(
            seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9),
        ));
        let factor = 1.0 - jitter + 2.0 * jitter * u;
        ((raw as f64) * factor).round().max(0.0) as u64
    }
}

/// SplitMix64: the deterministic generator behind retry jitter and the chaos
/// harness. Stateless — every draw derives from an explicit seed, so a rerun
/// with the same seed reproduces the exact failure/delay schedule.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a draw to `[0, 1)`.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

// FNV-1a used to live here; it is now the shared [`crate::fnv`] module,
// reused by the durable store, manifest fingerprints, chaos seeds, and the
// frame crate's logical-plan fingerprints.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_errors_classify_transient() {
        let e: TaskError = "boom".to_owned().into();
        assert_eq!(e, TaskError::Transient("boom".into()));
        assert_eq!(e.class(), "transient");
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.should_retry(&TaskError::transient("x"), 1));
    }

    #[test]
    fn transient_policy_respects_budget_and_class() {
        let p = RetryPolicy::transient(3);
        assert!(p.should_retry(&TaskError::transient("x"), 1));
        assert!(p.should_retry(&TaskError::transient("x"), 2));
        assert!(!p.should_retry(&TaskError::transient("x"), 3));
        assert!(!p.should_retry(&TaskError::permanent("x"), 1));
        assert!(!p.should_retry(&TaskError::Panic("p".into()), 1));
        assert!(!p.should_retry(&TaskError::Timeout { elapsed_ms: 5 }, 1));
    }

    #[test]
    fn retry_on_any_covers_panics_and_timeouts() {
        let p = RetryPolicy::transient(3).retrying(RetryOn::Any);
        assert!(p.should_retry(&TaskError::Panic("p".into()), 1));
        assert!(p.should_retry(&TaskError::Timeout { elapsed_ms: 5 }, 2));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 10,
            max_delay_ms: 100,
            jitter: 0.0,
            retry_on: RetryOn::Transient,
        };
        assert_eq!(p.delay_ms(1, 0), 10);
        assert_eq!(p.delay_ms(2, 0), 20);
        assert_eq!(p.delay_ms(3, 0), 40);
        assert_eq!(p.delay_ms(5, 0), 100); // capped
        assert_eq!(p.delay_ms(9, 0), 100);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            max_delay_ms: 100,
            jitter: 0.5,
            retry_on: RetryOn::Transient,
        };
        let a = p.delay_ms(1, 42);
        let b = p.delay_ms(1, 42);
        assert_eq!(a, b, "same seed, same delay");
        assert!((50..=150).contains(&a), "jittered delay in band, got {a}");
        let c = p.delay_ms(1, 43);
        // Different seeds almost surely differ; both stay in band.
        assert!((50..=150).contains(&c));
    }

    #[test]
    fn splitmix_is_stable() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
        let u = unit_f64(splitmix64(7));
        assert!((0.0..1.0).contains(&u));
    }
}
