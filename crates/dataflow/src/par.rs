//! Data-parallel helpers over slices: chunked map / for-each / reduce.
//!
//! These power the frame engine's kernels (group-by, filter, column math)
//! and the generator's per-month fan-out. They use scoped threads so borrowed
//! data needs no `'static` bound, split work into per-thread contiguous
//! chunks (cache-friendly, no false sharing on outputs), and fall back to the
//! sequential path for small inputs where thread startup would dominate.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Below this many elements, parallel entry points run sequentially.
pub const PAR_THRESHOLD: usize = 4096;

/// Trace one kernel invocation on the calling task attempt's span buffer.
///
/// The decision to record is taken on input *size* alone (≥
/// [`PAR_THRESHOLD`]), never on the effective thread count: data sizes are
/// deterministic across runs, so the span set — and with it the structural
/// trace digest — stays identical at 1 and N threads even though the small
/// degree-1 fallback executes sequentially.
struct KernelSpan {
    label: &'static str,
    items: u64,
    t0: Instant,
}

impl KernelSpan {
    fn open(label: &'static str, len: usize) -> Option<Self> {
        (len >= PAR_THRESHOLD).then(|| KernelSpan {
            label,
            items: len as u64,
            t0: Instant::now(),
        })
    }
}

impl Drop for KernelSpan {
    fn drop(&mut self) {
        crate::trace::note_par(self.label, self.items, self.t0.elapsed());
    }
}

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the default parallelism degree for all `par_*` helpers (0 = auto).
///
/// The workflow CLI maps its `-n N` argument here so the static pipeline and
/// the data kernels share one knob, like Swift/T's process count.
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Effective parallelism degree: configured value, else available cores.
pub fn threads() -> usize {
    match CONFIGURED_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Split `len` items into at most `parts` contiguous ranges of near-equal size.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Parallel map: applies `f` to each element, preserving order.
pub fn par_map<T: Sync, R: Send>(data: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let _span = KernelSpan::open("par_map", data.len());
    let n = threads();
    if data.len() < PAR_THRESHOLD || n == 1 {
        return data.iter().map(f).collect();
    }
    let mut out: Vec<R> = Vec::with_capacity(data.len());
    let ranges = split_ranges(data.len(), n);
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let slice = &data[range.clone()];
            let f = &f;
            joins.push(scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()));
        }
        for j in joins {
            out.extend(j.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
    });
    out
}

/// Parallel map over index ranges: `f` receives `(range, &mut out_chunk)` —
/// used when the caller wants to write results in place without collection
/// overhead. `out` must have the same length as `data` conceptually covers.
pub fn par_fill<R: Send>(len: usize, out: &mut Vec<R>, f: impl Fn(usize) -> R + Sync) {
    out.clear();
    let _span = KernelSpan::open("par_fill", len);
    let n = threads();
    if len < PAR_THRESHOLD || n == 1 {
        out.extend((0..len).map(f));
        return;
    }
    let ranges = split_ranges(len, n);
    let mut parts: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let range = range.clone();
            let f = &f;
            joins.push(scope.spawn(move || range.map(f).collect::<Vec<R>>()));
        }
        for j in joins {
            parts.push(j.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
    });
    for p in parts {
        out.extend(p);
    }
}

/// Parallel fold-then-reduce: each worker folds its chunk with `fold` starting
/// from `init()`, and the per-chunk accumulators are combined with `merge`.
pub fn par_fold<T: Sync, A: Send>(
    data: &[T],
    init: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> A {
    let _span = KernelSpan::open("par_fold", data.len());
    let n = threads();
    if data.len() < PAR_THRESHOLD || n == 1 {
        return data.iter().fold(init(), fold);
    }
    let ranges = split_ranges(data.len(), n);
    let mut accs: Vec<A> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let slice = &data[range.clone()];
            let init = &init;
            let fold = &fold;
            joins.push(scope.spawn(move || slice.iter().fold(init(), fold)));
        }
        for j in joins {
            accs.push(j.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
    });
    accs.into_iter().reduce(merge).unwrap_or_else(init)
}

/// Parallel for-each over mutable chunks: `f(chunk_index, chunk)`.
pub fn par_chunks_mut<T: Send>(data: &mut [T], parts: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let _span = KernelSpan::open("par_chunks_mut", len);
    let parts = parts.max(1).min(len);
    if parts == 1 {
        f(0, data);
        return;
    }
    let base = len / parts;
    let extra = len % parts;
    std::thread::scope(|scope| {
        let mut rest = data;
        for i in 0..parts {
            let size = base + usize::from(i < extra);
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(i, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        assert_eq!(split_ranges(0, 3), vec![]);
        assert_eq!(split_ranges(2, 8).len(), 2);
        // All elements covered, no overlap.
        let ranges = split_ranges(1_000_003, 7);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 1_000_003);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn par_map_matches_sequential() {
        let data: Vec<i64> = (0..100_000).collect();
        let seq: Vec<i64> = data.iter().map(|x| x * 2 + 1).collect();
        let par = par_map(&data, |x| x * 2 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_small_input() {
        let data = vec![1, 2, 3];
        assert_eq!(par_map(&data, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_fold_sums() {
        let data: Vec<u64> = (0..200_000).collect();
        let total = par_fold(&data, || 0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(total, 199_999 * 200_000 / 2);
    }

    #[test]
    fn par_fill_matches_index_function() {
        let mut out = Vec::new();
        par_fill(50_000, &mut out, |i| i * i);
        assert_eq!(out.len(), 50_000);
        assert_eq!(out[777], 777 * 777);
        assert_eq!(out[49_999], 49_999usize * 49_999);
    }

    #[test]
    fn par_chunks_mut_transforms_in_place() {
        let mut data: Vec<u32> = (0..10_000).collect();
        par_chunks_mut(&mut data, 8, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn configured_threads_round_trip() {
        // Note: global knob; restore afterwards to avoid cross-test effects.
        let before = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        let _ = before;
    }
}
