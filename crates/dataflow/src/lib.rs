#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # schedflow-dataflow
//!
//! A dataflow workflow engine — the Rust stand-in for the Swift/T runtime the
//! paper composes its pipeline with (§3.3).
//!
//! Stages are declared as an apparently linear list of tasks with input and
//! output artifact references ([`Workflow::task`]); the engine infers the DAG
//! from those data dependencies, validates it (single writer, no cycles,
//! producers for every consumed value), and executes it on a work-stealing
//! thread pool ([`pool::ThreadPool`]) whose size is the paper's `-n N`
//! physical concurrency. Make-style freshness caching skips stages whose file
//! outputs are newer than their file inputs, reproducing the obtain-data
//! stage's "use cached data if available" behaviour.
//!
//! The engine also exports the inferred graph as Graphviz DOT ([`dot`]) —
//! regenerating the paper's Figure 2 with its blue (static) / orange
//! (user-defined AI) stage coloring — and reports per-task timings and
//! concurrency ([`report::RunReport`]).
//!
//! [`par`] offers the chunked data-parallel kernels (map/fold/fill) used by
//! the frame engine and the trace generator.
//!
//! The fault-tolerance layer spans [`error`] (the [`TaskError`] taxonomy and
//! [`RetryPolicy`]), [`exec`] (retries, deadlines, the stall guard,
//! checkpoint/resume), [`manifest`] (the persisted [`RunManifest`]), and
//! [`chaos`] (the deterministic seeded fault injector).
//!
//! The durability layer is [`store`]: an atomic (temp → fsync → rename →
//! dir-fsync), checksummed artifact store over an injectable [`store::Fs`]
//! handle, with quarantine-and-rebuild on checksum mismatch and seeded I/O
//! fault injection (torn writes, `ENOSPC`, `EIO`, crash-at-nth-write).
//!
//! The concurrency-verification layer spans [`race`] (the vector-clock
//! happens-before tracker cross-checking actual artifact accesses at
//! runtime, [`RunOptions::detect_races`]) and the per-artifact content
//! digests ([`Workflow::track_digest`], [`report::RunReport::artifacts`])
//! that `schedflow verify-run` diffs across thread counts to certify
//! deterministic output.
//!
//! The observability layer is [`trace`] (aliased as [`obs`]):
//! seeded-deterministic spans for queue-wait / run / retry / checkpoint /
//! artifact-write / par-kernel events, counters and log2 histograms
//! aggregated into [`report::RunReport::telemetry`], a critical-path
//! analyzer, and Chrome trace-event export.

pub mod artifact;
pub mod chaos;
pub mod contract;
pub mod dot;
pub mod error;
pub mod exec;
pub mod fnv;
pub mod graph;
pub mod manifest;
pub mod par;
pub mod pool;
pub mod race;
pub mod report;
pub mod store;
pub mod trace;

/// The observability surface under its subsystem name (`schedflow-obs`).
pub use trace as obs;

pub use artifact::{Artifact, ArtifactId, DataStore, FileArtifact, TaskCtx};
pub use chaos::{ChaosConfig, ChaosScope, Fault, Injection};
pub use contract::{ColType, ColumnSpec, FrameSchema, SchemaEffect, TaskContract};
pub use dot::{to_dot, DotOptions};
pub use error::{RetryOn, RetryPolicy, TaskError};
pub use exec::{RunOptions, Runner};
pub use fnv::{fnv1a_bytes, fnv1a_str, Fnv1a};
pub use graph::{GraphError, StageKind, TaskId, Workflow};
pub use manifest::{ManifestEntry, RunManifest};
pub use pool::ThreadPool;
pub use race::RaceTracker;
pub use report::{
    human_bytes, ArtifactDigest, CardPoly, PlanEstimate, PlanStats, RunReport, TaskReport,
    TaskStatus,
};
pub use store::{DurableStore, FileCheck, Fs, RealFs};
pub use trace::{
    chrome_events, critical_path, render_summary, span_id, structural_digest, to_chrome_json,
    ChromeEvent, CriticalPath, DepEdge, Histogram, PathStep, SpanEvent, Telemetry, TraceCounters,
};
