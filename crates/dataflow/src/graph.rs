//! The workflow graph: tasks, dependency inference, and validation.
//!
//! Tasks are declared as "an apparently linear list" (§3.3 of the paper) of
//! named stages with input and output artifact references; the engine infers
//! the DAG — task B depends on task A exactly when B reads an artifact A
//! writes — and surfaces the residual concurrency automatically.

use crate::artifact::{
    Artifact, ArtifactId, ArtifactKindMeta, ArtifactMeta, FileArtifact, TaskCtx,
};
use crate::contract::{FrameSchema, TaskContract};
use crate::error::{RetryPolicy, TaskError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Whether a stage belongs to the fixed data-analysis subworkflow (blue in
/// the paper's Figure 2) or a user-defined AI subworkflow (orange).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Fixed, dataset-driven analysis stage.
    Static,
    /// Customizable user-defined extension (the AI/LLM stages).
    UserDefined,
}

/// Task identity within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    pub fn index(&self) -> usize {
        self.0
    }
}

pub(crate) type TaskBody = Box<dyn Fn(&TaskCtx) -> Result<(), TaskError> + Send + Sync>;

/// Type-erased content digest of one stored value artifact. `None` when the
/// stored value is not of the registered type or fails to serialize — the
/// outcome is deterministic per value, so digests stay comparable across
/// runs.
pub(crate) type DigestFn =
    std::sync::Arc<dyn Fn(&(dyn std::any::Any + Send + Sync)) -> Option<u64> + Send + Sync>;

pub(crate) struct TaskSpec {
    pub name: String,
    pub kind: StageKind,
    pub inputs: Vec<ArtifactId>,
    pub outputs: Vec<ArtifactId>,
    pub body: TaskBody,
    /// Per-task retry override (else the run-level default applies).
    pub retry: Option<RetryPolicy>,
    /// Per-task deadline override (else the run-level default applies).
    pub deadline: Option<Duration>,
    /// When true, this task is *not* skipped when an upstream dependency
    /// fails: it runs once every dependency has resolved (successfully or
    /// not) and reads whatever artifacts exist via [`TaskCtx::get_opt`].
    /// This is the degraded-mode hook for terminal consolidation stages
    /// (the dashboard renders a placeholder tab instead of disappearing).
    pub tolerates_failure: bool,
    /// Declared dataflow contract (input column requirements + output schema
    /// effects) — consumed by `schedflow-lint`, never by the executor.
    pub contract: Option<TaskContract>,
    /// Fingerprint of the task's canonicalized optimized logical plan, when
    /// the body executes one (see `schedflow-frame`'s `plan` module). Folded
    /// into the manifest fingerprint so artifact-cache/resume freshness is
    /// invalidated when the *computation* changes, not just the graph wiring.
    pub plan_fingerprint: Option<u64>,
    /// Static cost estimate for the task's declared plan — computed by the
    /// SF08xx cost analysis at declaration time, copied into
    /// [`crate::report::TaskReport::estimate`] for the estimated-vs-actual
    /// cross-check. Never consulted for scheduling.
    pub plan_estimate: Option<crate::report::PlanEstimate>,
    /// The declared logical plan itself, type-erased so this crate stays
    /// independent of `schedflow-frame` (which defines the plan IR and
    /// depends on us). `schedflow-lint`'s cost pass downcasts it back to a
    /// `LazyPlan` to run the abstract interpreter; the executor ignores it.
    pub plan_payload: Option<std::sync::Arc<dyn std::any::Any + Send + Sync>>,
}

/// Errors detected when validating a workflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two tasks both declare the same artifact as output.
    MultipleWriters {
        artifact: String,
        first: String,
        second: String,
    },
    /// A value artifact is consumed but never produced nor provided.
    MissingProducer { artifact: String, consumer: String },
    /// The dependency relation contains a cycle.
    Cycle { involving: Vec<String> },
    /// A task name was used twice (names key reports and DOT nodes).
    DuplicateTaskName(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::MultipleWriters {
                artifact,
                first,
                second,
            } => write!(
                f,
                "artifact {artifact:?} written by both {first:?} and {second:?}"
            ),
            GraphError::MissingProducer { artifact, consumer } => write!(
                f,
                "value artifact {artifact:?} consumed by {consumer:?} has no producer"
            ),
            GraphError::Cycle { involving } => {
                write!(f, "dependency cycle involving {involving:?}")
            }
            GraphError::DuplicateTaskName(n) => write!(f, "duplicate task name {n:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A declared workflow: artifacts + tasks, ready for validation and execution.
pub struct Workflow {
    pub(crate) artifacts: Vec<ArtifactMeta>,
    pub(crate) tasks: Vec<TaskSpec>,
    /// Values supplied from outside the graph (workflow parameters).
    pub(crate) provided: Vec<(ArtifactId, std::sync::Arc<dyn std::any::Any + Send + Sync>)>,
    /// Value artifacts the caller reads after the run — exempt from the
    /// executor's drop-after-last-consumer lifetime tracking.
    pub(crate) retained: std::collections::HashSet<ArtifactId>,
    /// Schemas declared directly on artifacts (workflow parameters and
    /// external file inputs whose shape is known to the caller).
    pub(crate) declared_schemas: Vec<(ArtifactId, FrameSchema)>,
    /// Content-digest functions for value artifacts the determinism verifier
    /// tracks (see [`Workflow::track_digest`]). File artifacts need no
    /// registration — their bytes are hashed from disk.
    pub(crate) digests: Vec<(ArtifactId, DigestFn)>,
}

impl Default for Workflow {
    fn default() -> Self {
        Self::new()
    }
}

impl Workflow {
    pub fn new() -> Self {
        Self {
            artifacts: Vec::new(),
            tasks: Vec::new(),
            provided: Vec::new(),
            retained: std::collections::HashSet::new(),
            declared_schemas: Vec::new(),
            digests: Vec::new(),
        }
    }

    /// Declare a typed value artifact.
    pub fn value<T>(&mut self, name: &str) -> Artifact<T> {
        let id = ArtifactId(self.artifacts.len());
        self.artifacts.push(ArtifactMeta {
            name: name.to_owned(),
            kind: ArtifactKindMeta::Value,
        });
        Artifact::new(id)
    }

    /// Declare a file artifact at the given path.
    pub fn file(&mut self, path: impl Into<PathBuf>) -> FileArtifact {
        let path = path.into();
        let id = ArtifactId(self.artifacts.len());
        self.artifacts.push(ArtifactMeta {
            name: path.display().to_string(),
            kind: ArtifactKindMeta::File(path.clone()),
        });
        FileArtifact { id, path }
    }

    /// Provide an externally computed value for an artifact (a workflow
    /// parameter), satisfying consumers without a producing task.
    pub fn provide<T: Send + Sync + 'static>(&mut self, a: Artifact<T>, value: T) {
        self.provided.push((a.id, std::sync::Arc::new(value)));
    }

    /// Add a task. `inputs`/`outputs` are the data-dependency declaration the
    /// engine builds the DAG from. Untyped `String` errors classify as
    /// [`TaskError::Transient`]; use [`Workflow::task_typed`] to classify
    /// failures explicitly.
    pub fn task(
        &mut self,
        name: &str,
        kind: StageKind,
        inputs: impl IntoIterator<Item = ArtifactId>,
        outputs: impl IntoIterator<Item = ArtifactId>,
        body: impl Fn(&TaskCtx) -> Result<(), String> + Send + Sync + 'static,
    ) -> TaskId {
        self.task_typed(name, kind, inputs, outputs, move |ctx| {
            body(ctx).map_err(TaskError::from)
        })
    }

    /// Add a task whose body classifies its own failures (transient vs
    /// permanent), enabling precise retry-on decisions.
    pub fn task_typed(
        &mut self,
        name: &str,
        kind: StageKind,
        inputs: impl IntoIterator<Item = ArtifactId>,
        outputs: impl IntoIterator<Item = ArtifactId>,
        body: impl Fn(&TaskCtx) -> Result<(), TaskError> + Send + Sync + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(TaskSpec {
            name: name.to_owned(),
            kind,
            inputs: inputs.into_iter().collect(),
            outputs: outputs.into_iter().collect(),
            body: Box::new(body),
            retry: None,
            deadline: None,
            tolerates_failure: false,
            contract: None,
            plan_fingerprint: None,
            plan_estimate: None,
            plan_payload: None,
        });
        id
    }

    /// Attach (or replace) the dataflow contract of one task. The executor
    /// ignores contracts entirely; `schedflow-lint` interprets them before
    /// any task runs.
    pub fn with_contract(&mut self, id: TaskId, contract: TaskContract) {
        self.tasks[id.0].contract = Some(contract);
    }

    /// The declared contract of a task, if any.
    pub fn contract(&self, id: TaskId) -> Option<&TaskContract> {
        self.tasks[id.0].contract.as_ref()
    }

    /// Attach the fingerprint of the canonicalized optimized logical plan the
    /// task's body executes. Composes with the structural manifest
    /// fingerprint ([`crate::manifest::fingerprint`]): a changed plan — new
    /// predicate, different projection — invalidates checkpoint/resume and
    /// cache freshness for the task even though its graph wiring is
    /// unchanged.
    pub fn with_plan_fingerprint(&mut self, id: TaskId, fingerprint: u64) {
        self.tasks[id.0].plan_fingerprint = Some(fingerprint);
    }

    /// The declared plan fingerprint of a task, if any.
    pub fn plan_fingerprint(&self, id: TaskId) -> Option<u64> {
        self.tasks[id.0].plan_fingerprint
    }

    /// Attach the static cost estimate of the task's declared plan (the
    /// SF08xx abstract-interpretation result). Surfaced per task in
    /// [`crate::report::TaskReport::estimate`] so runs can report
    /// estimated-vs-actual cardinalities; never consulted for scheduling.
    pub fn with_plan_estimate(&mut self, id: TaskId, estimate: crate::report::PlanEstimate) {
        self.tasks[id.0].plan_estimate = Some(estimate);
    }

    /// The declared static plan estimate of a task, if any.
    pub fn plan_estimate(&self, id: TaskId) -> Option<&crate::report::PlanEstimate> {
        self.tasks[id.0].plan_estimate.as_ref()
    }

    /// Attach the task's declared logical plan as an opaque payload. This
    /// crate never interprets it — `schedflow-lint`'s cost pass downcasts it
    /// to the frame crate's `LazyPlan` to run the SF08xx analysis without
    /// introducing a dataflow→frame dependency cycle.
    pub fn with_plan_payload(
        &mut self,
        id: TaskId,
        payload: std::sync::Arc<dyn std::any::Any + Send + Sync>,
    ) {
        self.tasks[id.0].plan_payload = Some(payload);
    }

    /// The task's opaque plan payload, if any.
    pub fn task_plan_payload(
        &self,
        id: TaskId,
    ) -> Option<&std::sync::Arc<dyn std::any::Any + Send + Sync>> {
        self.tasks[id.0].plan_payload.as_ref()
    }

    /// Declare the schema of an artifact directly — for workflow parameters
    /// ([`Workflow::provide`]) and external file inputs whose shape the
    /// caller knows even though no task in the graph produces them.
    pub fn declare_schema(&mut self, id: ArtifactId, schema: FrameSchema) {
        match self.declared_schemas.iter_mut().find(|(a, _)| *a == id) {
            Some((_, s)) => *s = schema,
            None => self.declared_schemas.push((id, schema)),
        }
    }

    /// A schema declared directly on an artifact, if any.
    pub fn declared_schema(&self, id: ArtifactId) -> Option<&FrameSchema> {
        self.declared_schemas
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, s)| s)
    }

    /// Override the retry policy for one task (otherwise the run-level
    /// default from [`crate::RunOptions`] applies).
    pub fn with_retry(&mut self, id: TaskId, policy: RetryPolicy) {
        self.tasks[id.0].retry = Some(policy);
    }

    /// Override the deadline for one task (otherwise the run-level default
    /// from [`crate::RunOptions`] applies).
    pub fn with_deadline(&mut self, id: TaskId, deadline: Duration) {
        self.tasks[id.0].deadline = Some(deadline);
    }

    /// Mark a task failure-tolerant: it runs even when upstream dependencies
    /// fail, reading surviving artifacts via [`TaskCtx::get_opt`].
    pub fn tolerate_failures(&mut self, id: TaskId) {
        self.tasks[id.0].tolerates_failure = true;
    }

    /// Keep an artifact's value alive past its last consumer: the executor
    /// normally drops each consumed value artifact once every reader has
    /// resolved, so anything the caller inspects post-run (via
    /// [`crate::exec::Runner::store`]) must be marked retained.
    pub fn retain(&mut self, id: ArtifactId) {
        self.retained.insert(id);
    }

    /// Whether an artifact is exempt from lifetime-based dropping.
    pub fn is_retained(&self, id: ArtifactId) -> bool {
        self.retained.contains(&id)
    }

    /// Track the content digest of a value artifact for the determinism
    /// verifier: after the producing task succeeds, the executor serializes
    /// the stored value and records an FNV-1a digest of the bytes in
    /// [`crate::RunReport::artifacts`]. Two runs of the same workflow that
    /// disagree on a tracked digest are nondeterministic. File artifacts are
    /// digested automatically from their on-disk bytes.
    pub fn track_digest<T: serde::Serialize + Send + Sync + 'static>(&mut self, a: Artifact<T>) {
        let f: DigestFn = std::sync::Arc::new(|any| {
            any.downcast_ref::<T>()
                .and_then(|v| serde_json::to_vec(v).ok())
                .map(|bytes| crate::fnv::fnv1a_bytes(&bytes))
        });
        match self.digests.iter_mut().find(|(id, _)| *id == a.id) {
            Some((_, g)) => *g = f,
            None => self.digests.push((a.id, f)),
        }
    }

    /// Whether [`Workflow::track_digest`] was called for this artifact.
    pub fn tracks_digest(&self, id: ArtifactId) -> bool {
        self.digests.iter().any(|(a, _)| *a == id)
    }

    /// The registered digest function of a value artifact, if any.
    pub(crate) fn digest_fn(&self, id: ArtifactId) -> Option<&DigestFn> {
        self.digests.iter().find(|(a, _)| *a == id).map(|(_, f)| f)
    }

    /// Number of distinct consumer tasks per artifact (indexed by
    /// [`ArtifactId::index`]) — the executor's initial reference counts for
    /// lifetime tracking, exposed so callers can audit drop decisions.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.artifacts.len()];
        for t in &self.tasks {
            let mut seen: Vec<ArtifactId> = t.inputs.clone();
            seen.sort_unstable();
            seen.dedup();
            for a in seen {
                counts[a.0] += 1;
            }
        }
        counts
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Ids of all declared artifacts, in declaration order.
    pub fn artifact_ids(&self) -> impl Iterator<Item = ArtifactId> + '_ {
        (0..self.artifacts.len()).map(ArtifactId)
    }

    pub fn artifact_count(&self) -> usize {
        self.artifacts.len()
    }

    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// Ids of all declared tasks, in declaration order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Look a task up by name.
    pub fn task_id(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// Stage kind (static analysis vs user-defined AI) of a task.
    pub fn task_kind(&self, id: TaskId) -> StageKind {
        self.tasks[id.0].kind
    }

    /// Input artifacts of a task, as declared.
    pub fn task_inputs(&self, id: TaskId) -> &[ArtifactId] {
        &self.tasks[id.0].inputs
    }

    /// Output artifacts of a task, as declared.
    pub fn task_outputs(&self, id: TaskId) -> &[ArtifactId] {
        &self.tasks[id.0].outputs
    }

    /// Per-task retry override, if any.
    pub fn task_retry(&self, id: TaskId) -> Option<&RetryPolicy> {
        self.tasks[id.0].retry.as_ref()
    }

    /// Per-task deadline override, if any.
    pub fn task_deadline(&self, id: TaskId) -> Option<Duration> {
        self.tasks[id.0].deadline
    }

    /// Whether the task runs even when upstream dependencies fail.
    pub fn task_tolerates_failure(&self, id: TaskId) -> bool {
        self.tasks[id.0].tolerates_failure
    }

    /// Whether an artifact has an externally provided value.
    pub fn is_provided(&self, id: ArtifactId) -> bool {
        self.provided.iter().any(|(a, _)| *a == id)
    }

    /// Name of an artifact (for reports, fingerprints, DOT export).
    pub fn artifact_name(&self, id: ArtifactId) -> &str {
        &self.artifacts[id.0].name
    }

    /// Path of a file artifact, `None` for value artifacts.
    pub fn file_path(&self, id: ArtifactId) -> Option<&Path> {
        match &self.artifacts[id.0].kind {
            ArtifactKindMeta::File(p) => Some(p.as_path()),
            ArtifactKindMeta::Value => None,
        }
    }

    /// All task names, in declaration order.
    pub fn task_names(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.name.as_str()).collect()
    }

    /// Producer task of each artifact, if any.
    pub fn producers(&self) -> HashMap<ArtifactId, TaskId> {
        let mut map = HashMap::new();
        for (ti, t) in self.tasks.iter().enumerate() {
            for &out in &t.outputs {
                map.insert(out, TaskId(ti));
            }
        }
        map
    }

    /// Direct dependencies of each task (deduplicated, by producer lookup).
    pub fn dependencies(&self) -> Vec<Vec<TaskId>> {
        let producers = self.producers();
        self.tasks
            .iter()
            .map(|t| {
                let mut deps: Vec<TaskId> = t
                    .inputs
                    .iter()
                    .filter_map(|a| producers.get(a).copied())
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            })
            .collect()
    }

    /// Validate the graph: unique writers, producers for all consumed value
    /// artifacts, unique task names, and acyclicity. Returns each task's
    /// depth (longest path from a root) on success — the "horizontal rows"
    /// of the paper's Figure 2.
    pub fn validate(&self) -> Result<Vec<usize>, GraphError> {
        // Unique task names.
        let mut seen = HashMap::new();
        for t in &self.tasks {
            if seen.insert(t.name.as_str(), ()).is_some() {
                return Err(GraphError::DuplicateTaskName(t.name.clone()));
            }
        }

        // Single writer per artifact.
        let mut writer: HashMap<ArtifactId, usize> = HashMap::new();
        for (ti, t) in self.tasks.iter().enumerate() {
            for &out in &t.outputs {
                if let Some(&first) = writer.get(&out) {
                    return Err(GraphError::MultipleWriters {
                        artifact: self.artifacts[out.0].name.clone(),
                        first: self.tasks[first].name.clone(),
                        second: t.name.clone(),
                    });
                }
                writer.insert(out, ti);
            }
        }

        // Every consumed value artifact has a producer or a provided value.
        let provided: std::collections::HashSet<ArtifactId> =
            self.provided.iter().map(|(id, _)| *id).collect();
        for t in &self.tasks {
            for &input in &t.inputs {
                let meta = &self.artifacts[input.0];
                let has_source = writer.contains_key(&input) || provided.contains(&input);
                if meta.kind == ArtifactKindMeta::Value && !has_source {
                    return Err(GraphError::MissingProducer {
                        artifact: meta.name.clone(),
                        consumer: t.name.clone(),
                    });
                }
                // File artifacts without producers are external inputs; their
                // existence is checked when the consuming task runs.
            }
        }

        // Kahn's algorithm for cycle detection + longest-path depth.
        let deps = self.dependencies();
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ti, ds) in deps.iter().enumerate() {
            indegree[ti] = ds.len();
            for d in ds {
                dependents[d.0].push(ti);
            }
        }
        let mut depth = vec![0usize; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &j in &dependents[i] {
                depth[j] = depth[j].max(depth[i] + 1);
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if visited != n {
            return Err(GraphError::Cycle {
                involving: self.extract_cycle(&deps, &indegree),
            });
        }
        Ok(depth)
    }

    /// Extract one actual dependency cycle, deterministically.
    ///
    /// After Kahn's algorithm, every node with residual indegree > 0 has at
    /// least one unresolved dependency — but that set also contains mere
    /// *descendants* of cycles. Walking from the smallest remaining task
    /// index, always into the smallest remaining dependency, must revisit a
    /// node; the loop from that node is a genuine cycle. It is reported in
    /// dependency order, rotated to start at its smallest task index, so the
    /// diagnostic is stable across runs and snapshot-testable.
    fn extract_cycle(&self, deps: &[Vec<TaskId>], indegree: &[usize]) -> Vec<String> {
        let remaining = |i: usize| indegree[i] > 0;
        let start = match (0..self.tasks.len()).find(|&i| remaining(i)) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut seen_at = vec![usize::MAX; self.tasks.len()];
        let mut path = Vec::new();
        let mut cur = start;
        let cycle_start = loop {
            if seen_at[cur] != usize::MAX {
                break seen_at[cur];
            }
            seen_at[cur] = path.len();
            path.push(cur);
            match deps[cur]
                .iter()
                .map(|d| d.0)
                .filter(|&d| remaining(d))
                .min()
            {
                Some(next) => cur = next,
                // Unreachable: a remaining node always has a remaining dep.
                None => break path.len().saturating_sub(1),
            }
        };
        let mut cycle: Vec<usize> = path[cycle_start..].to_vec();
        // The walk follows dependency edges backwards (consumer → producer);
        // reverse so the report reads in execution (dependency) order.
        cycle.reverse();
        if let Some(min_pos) = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(p, _)| p)
        {
            cycle.rotate_left(min_pos);
        }
        cycle
            .into_iter()
            .map(|i| self.tasks[i].name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_list_infers_chain() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let c = wf.value::<u32>("c");
        wf.task("t1", StageKind::Static, [], [a.id()], |_| Ok(()));
        wf.task("t2", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        wf.task("t3", StageKind::Static, [b.id()], [c.id()], |_| Ok(()));
        let depth = wf.validate().unwrap();
        assert_eq!(depth, vec![0, 1, 2]);
        let deps = wf.dependencies();
        assert_eq!(deps[2], vec![TaskId(1)]);
    }

    #[test]
    fn independent_tasks_share_depth() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let x = wf.value::<u32>("x");
        let y = wf.value::<u32>("y");
        wf.task("root", StageKind::Static, [], [a.id()], |_| Ok(()));
        wf.task("left", StageKind::Static, [a.id()], [x.id()], |_| Ok(()));
        wf.task("right", StageKind::UserDefined, [a.id()], [y.id()], |_| {
            Ok(())
        });
        let depth = wf.validate().unwrap();
        assert_eq!(depth, vec![0, 1, 1]);
    }

    #[test]
    fn multiple_writers_rejected() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        wf.task("t1", StageKind::Static, [], [a.id()], |_| Ok(()));
        wf.task("t2", StageKind::Static, [], [a.id()], |_| Ok(()));
        assert!(matches!(
            wf.validate(),
            Err(GraphError::MultipleWriters { .. })
        ));
    }

    #[test]
    fn missing_producer_rejected_for_values() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("orphan");
        wf.task("t", StageKind::Static, [a.id()], [], |_| Ok(()));
        assert!(matches!(
            wf.validate(),
            Err(GraphError::MissingProducer { .. })
        ));
    }

    #[test]
    fn provided_value_satisfies_consumer() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("param");
        wf.provide(a, 7);
        wf.task("t", StageKind::Static, [a.id()], [], |_| Ok(()));
        wf.validate().unwrap();
    }

    #[test]
    fn external_file_inputs_allowed() {
        let mut wf = Workflow::new();
        let f = wf.file("/tmp/external.txt");
        wf.task("t", StageKind::Static, [f.id()], [], |_| Ok(()));
        wf.validate().unwrap();
    }

    #[test]
    fn cycle_detected() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("t1", StageKind::Static, [b.id()], [a.id()], |_| Ok(()));
        wf.task("t2", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        assert!(matches!(wf.validate(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn cycle_report_is_the_cycle_only_in_stable_order() {
        // A 3-cycle (u → v → w → u) plus a descendant that consumes from it:
        // the descendant must not appear, and the order is deterministic —
        // dependency order starting from the smallest task index.
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let c = wf.value::<u32>("c");
        let d = wf.value::<u32>("d");
        wf.task("u", StageKind::Static, [c.id()], [a.id()], |_| Ok(()));
        wf.task("v", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        wf.task("w", StageKind::Static, [b.id()], [c.id()], |_| Ok(()));
        wf.task("descendant", StageKind::Static, [c.id()], [d.id()], |_| {
            Ok(())
        });
        match wf.validate() {
            Err(GraphError::Cycle { involving }) => {
                assert_eq!(involving, vec!["u", "v", "w"]);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn contract_round_trips() {
        use crate::contract::{ColType, FrameSchema, TaskContract};
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let t = wf.task("t", StageKind::Static, [], [a.id()], |_| Ok(()));
        assert!(wf.contract(t).is_none());
        let schema = FrameSchema::new().with("x", ColType::Int);
        wf.with_contract(t, TaskContract::new().produces(a.id(), schema.clone()));
        let c = wf.contract(t).unwrap();
        assert_eq!(c.effects.len(), 1);
        wf.declare_schema(a.id(), schema.clone());
        assert_eq!(wf.declared_schema(a.id()), Some(&schema));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut wf = Workflow::new();
        wf.task("same", StageKind::Static, [], [], |_| Ok(()));
        wf.task("same", StageKind::Static, [], [], |_| Ok(()));
        assert!(matches!(
            wf.validate(),
            Err(GraphError::DuplicateTaskName(_))
        ));
    }

    #[test]
    fn diamond_depths() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let l = wf.value::<u32>("l");
        let r = wf.value::<u32>("r");
        let j = wf.value::<u32>("j");
        wf.task("src", StageKind::Static, [], [a.id()], |_| Ok(()));
        wf.task("left", StageKind::Static, [a.id()], [l.id()], |_| Ok(()));
        wf.task("right", StageKind::Static, [a.id()], [r.id()], |_| Ok(()));
        wf.task(
            "join",
            StageKind::Static,
            [l.id(), r.id()],
            [j.id()],
            |_| Ok(()),
        );
        assert_eq!(wf.validate().unwrap(), vec![0, 1, 1, 2]);
    }
}
