//! Run reports: per-task timing, status, and concurrency accounting.

use serde::Serialize;

/// Human-readable byte count for summary lines (`1.5 MiB`).
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Terminal status of one task in a run.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "status", content = "detail")]
pub enum TaskStatus {
    /// Ran to completion.
    Succeeded,
    /// Body returned an error or panicked (after exhausting retries).
    Failed(String),
    /// The watchdog saw the task exceed its deadline.
    TimedOut { elapsed_ms: u64 },
    /// The whole run stopped making progress while this task was in flight
    /// (the stall guard fired after `elapsed_ms` without any completion).
    Stalled { elapsed_ms: u64 },
    /// Not run because an upstream dependency failed.
    Skipped,
    /// Not run because its file outputs were newer than all file inputs.
    Cached,
    /// Not run because the resume manifest recorded a previous success and
    /// all file outputs still exist.
    Resumed,
}

impl TaskStatus {
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            TaskStatus::Succeeded | TaskStatus::Cached | TaskStatus::Resumed
        )
    }

    /// Terminal error states (failed, timed out, or stalled).
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            TaskStatus::Failed(_) | TaskStatus::TimedOut { .. } | TaskStatus::Stalled { .. }
        )
    }

    /// Manifest status string (see [`crate::manifest::ManifestEntry`]).
    pub fn manifest_str(&self) -> &'static str {
        match self {
            TaskStatus::Succeeded => "succeeded",
            TaskStatus::Failed(_) => "failed",
            TaskStatus::TimedOut { .. } => "timed-out",
            TaskStatus::Stalled { .. } => "stalled",
            TaskStatus::Skipped => "skipped",
            TaskStatus::Cached => "cached",
            TaskStatus::Resumed => "resumed",
        }
    }
}

/// A saturating cardinality polynomial in `n`, the number of source rows a
/// plan scans: `konst + linear·n + quad·n²`, or `∞` when `unbounded` is set.
///
/// This is the abstract domain of the SF08xx cost analysis
/// (`schedflow-lint`'s `cost_flow` pass): source sizes are unknown at lint
/// time, so per-operator row bounds are kept symbolic in `n` and only
/// evaluated once a concrete row count exists — at runtime against the
/// scanned-row tally, or at lint time against an assumed source size for the
/// `--mem-budget` peak check. Degree is capped at 2; any product that would
/// exceed it (nested non-key joins) widens to `∞`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CardPoly {
    /// Constant term.
    pub konst: u64,
    /// Coefficient of `n`.
    pub linear: u64,
    /// Coefficient of `n²`.
    pub quad: u64,
    /// Top element: no finite bound (quadratic blow-up past degree 2).
    pub unbounded: bool,
}

impl CardPoly {
    /// The zero polynomial (bottom of the domain for upper bounds).
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant bound.
    pub fn konst(c: u64) -> Self {
        Self {
            konst: c,
            ..Self::default()
        }
    }

    /// The identity bound `n` (one output row per scanned source row).
    pub fn n() -> Self {
        Self {
            linear: 1,
            ..Self::default()
        }
    }

    /// Top: no finite bound.
    pub fn unbounded() -> Self {
        Self {
            unbounded: true,
            ..Self::default()
        }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        !self.unbounded && self.konst == 0 && self.linear == 0 && self.quad == 0
    }

    /// Saturating pointwise sum.
    pub fn add(&self, other: &CardPoly) -> CardPoly {
        if self.unbounded || other.unbounded {
            return CardPoly::unbounded();
        }
        CardPoly {
            konst: self.konst.saturating_add(other.konst),
            linear: self.linear.saturating_add(other.linear),
            quad: self.quad.saturating_add(other.quad),
            unbounded: false,
        }
    }

    /// Polynomial product, widening to `∞` past degree 2.
    pub fn mul(&self, other: &CardPoly) -> CardPoly {
        if self.unbounded || other.unbounded {
            return CardPoly::unbounded();
        }
        // Degree overflow: any term whose combined degree exceeds 2 widens.
        if (self.quad > 0 && (other.linear > 0 || other.quad > 0))
            || (other.quad > 0 && self.linear > 0)
            || (self.linear > 0 && other.linear > 0 && (self.quad > 0 || other.quad > 0))
        {
            return CardPoly::unbounded();
        }
        CardPoly {
            konst: self.konst.saturating_mul(other.konst),
            linear: self
                .konst
                .saturating_mul(other.linear)
                .saturating_add(self.linear.saturating_mul(other.konst)),
            quad: self
                .konst
                .saturating_mul(other.quad)
                .saturating_add(self.quad.saturating_mul(other.konst))
                .saturating_add(self.linear.saturating_mul(other.linear)),
            unbounded: false,
        }
    }

    /// Pointwise maximum — a sound join for upper bounds.
    pub fn max(&self, other: &CardPoly) -> CardPoly {
        if self.unbounded || other.unbounded {
            return CardPoly::unbounded();
        }
        CardPoly {
            konst: self.konst.max(other.konst),
            linear: self.linear.max(other.linear),
            quad: self.quad.max(other.quad),
            unbounded: false,
        }
    }

    /// Evaluate at a concrete source-row count, saturating; `∞` evaluates to
    /// `u64::MAX`.
    pub fn eval(&self, n: u64) -> u64 {
        if self.unbounded {
            return u64::MAX;
        }
        self.konst
            .saturating_add(self.linear.saturating_mul(n))
            .saturating_add(self.quad.saturating_mul(n.saturating_mul(n)))
    }

    /// Compact symbolic rendering: `0`, `3`, `n`, `2n+1`, `n²`, `∞`.
    pub fn render(&self) -> String {
        if self.unbounded {
            return "∞".to_owned();
        }
        let mut terms = Vec::new();
        match self.quad {
            0 => {}
            1 => terms.push("n²".to_owned()),
            q => terms.push(format!("{q}n²")),
        }
        match self.linear {
            0 => {}
            1 => terms.push("n".to_owned()),
            l => terms.push(format!("{l}n")),
        }
        if self.konst > 0 || terms.is_empty() {
            terms.push(self.konst.to_string());
        }
        terms.join("+")
    }
}

/// Static cardinality and byte-width estimate for the single logical plan a
/// task executes — the product of the SF08xx cost abstract interpreter
/// (`schedflow_frame::cost`), attached to tasks at workflow-declaration time
/// and carried into [`TaskReport::estimate`] so every run can report
/// estimated-vs-actual rows and bytes per stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PlanEstimate {
    /// Lower bound on output rows, as a polynomial in scanned source rows.
    pub rows_lo: CardPoly,
    /// Upper bound on output rows.
    pub rows_hi: CardPoly,
    /// Estimated bytes per output row (column-width model).
    pub out_row_bytes: u64,
    /// Estimated bytes per scanned source row after projection pruning.
    pub scan_row_bytes: u64,
}

impl PlanEstimate {
    /// The concrete `[lo, hi]` row interval at a given source-row count.
    pub fn rows_interval(&self, n: u64) -> (u64, u64) {
        (self.rows_lo.eval(n), self.rows_hi.eval(n))
    }

    /// Soundness check: does an observed output-row count fall inside the
    /// predicted interval for `n` scanned source rows?
    pub fn contains_rows(&self, n: u64, actual: u64) -> bool {
        let (lo, hi) = self.rows_interval(n);
        lo <= actual && actual <= hi
    }

    /// Upper bound on materialized output bytes at a given source-row count.
    pub fn bytes_hi(&self, n: u64) -> u64 {
        self.rows_hi.eval(n).saturating_mul(self.out_row_bytes)
    }
}

/// Optimizer accounting for the logical plans a task executed (zero-valued
/// when the task ran no plans). Produced by `schedflow-frame`'s plan
/// executor, recorded through [`crate::TaskCtx::record_plan_stats`], and
/// surfaced per task in [`TaskReport::plan`] plus run-wide in
/// [`RunReport::plan_totals`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PlanStats {
    /// Logical plans executed.
    pub plans: u64,
    /// Source columns visible to the plans' scans.
    pub cols_total: u64,
    /// Source columns actually scanned after projection pruning.
    pub cols_scanned: u64,
    /// Predicate conjuncts pushed down into scans.
    pub predicates_pushed: u64,
    /// Adjacent filter nodes fused by the optimizer.
    pub filters_fused: u64,
    /// Duplicate subplans served from the common-subplan cache.
    pub subplans_deduped: u64,
    /// Estimated bytes of the columns the optimized plans touched.
    pub bytes_scanned: u64,
    /// Estimated bytes an eager full-frame execution would have touched
    /// (every source column, once per scan).
    pub bytes_eager: u64,
    /// Source rows visible to the scans.
    pub rows_in: u64,
    /// Rows in the plans' outputs.
    pub rows_out: u64,
    /// Row-gathering materializations performed (the optimizer contract is
    /// at most one per plan).
    pub materializations: u64,
}

impl PlanStats {
    /// Fold another accounting record into this one.
    pub fn merge(&mut self, other: &PlanStats) {
        self.plans += other.plans;
        self.cols_total += other.cols_total;
        self.cols_scanned += other.cols_scanned;
        self.predicates_pushed += other.predicates_pushed;
        self.filters_fused += other.filters_fused;
        self.subplans_deduped += other.subplans_deduped;
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_eager += other.bytes_eager;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.materializations += other.materializations;
    }

    /// Bytes-scanned reduction factor vs. eager execution (1.0 when nothing
    /// was saved or nothing was scanned).
    pub fn scan_reduction(&self) -> f64 {
        if self.bytes_scanned == 0 {
            return 1.0;
        }
        (self.bytes_eager as f64 / self.bytes_scanned as f64).max(1.0)
    }
}

/// Outcome of one task.
#[derive(Debug, Clone, Serialize)]
pub struct TaskReport {
    pub name: String,
    /// `"static"` or `"user-defined"` — the Figure 2 coloring.
    pub kind: &'static str,
    pub status: TaskStatus,
    /// Start offset from run begin, milliseconds. Zero for unexecuted tasks.
    pub start_ms: f64,
    /// End offset from run begin, milliseconds. Zero for unexecuted tasks.
    pub end_ms: f64,
    /// Worker thread that executed the task.
    pub worker: Option<usize>,
    /// Longest-path depth in the DAG (the Figure 2 "row").
    pub depth: usize,
    /// Executed attempts (0 for cached/resumed/skipped tasks; >1 means the
    /// retry policy re-ran the task).
    pub attempts: u32,
    /// Advertised bytes of value artifacts the task read (data-plane in).
    pub bytes_in: u64,
    /// Advertised bytes of value artifacts the task produced (data-plane out).
    pub bytes_out: u64,
    /// Logical-plan optimizer accounting, when the task executed plans and
    /// recorded them ([`crate::TaskCtx::record_plan_stats`]).
    pub plan: Option<PlanStats>,
    /// Static cost estimate for the task's declared plan, when one was
    /// attached ([`crate::Workflow::with_plan_estimate`]) — compare against
    /// `plan` for the estimated-vs-actual soundness cross-check.
    pub estimate: Option<PlanEstimate>,
}

impl TaskReport {
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// Content digest of one artifact produced during a run — the determinism
/// verifier's unit of comparison (`schedflow verify-run` diffs these across
/// thread counts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ArtifactDigest {
    pub name: String,
    /// `"value"` or `"file"`.
    pub kind: &'static str,
    /// Hex FNV-1a digest of the artifact content: file bytes for file
    /// artifacts, the serialized form for tracked value artifacts
    /// ([`crate::Workflow::track_digest`]). `None` when the content could
    /// not be read or serialized — deterministically so, hence still
    /// comparable across runs.
    pub digest: Option<String>,
}

/// Summary of one workflow execution.
///
/// Entries are deterministically ordered for byte-diffability across runs:
/// `tasks` in task-declaration (id) order regardless of completion order,
/// `artifacts` sorted by artifact name.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Physical concurrency (`-n N`).
    pub threads: usize,
    /// Wall time of the whole run, milliseconds.
    pub makespan_ms: f64,
    /// High-water mark of value-artifact bytes resident in the data store
    /// (advertised sizes; the lifetime tracker's drop decisions shape this).
    pub peak_resident_bytes: u64,
    pub tasks: Vec<TaskReport>,
    /// Content digests of produced artifacts (files always; value artifacts
    /// when tracked), sorted by name.
    pub artifacts: Vec<ArtifactDigest>,
    /// Counterexample traces from the dynamic race detector (task pair,
    /// artifact, vector-clock states). Non-empty means the run was aborted.
    pub race_violations: Vec<String>,
    /// Observability record: spans, counters, histograms, and the executed
    /// DAG's edges (see [`crate::trace`]). Default-empty when the run
    /// executed with tracing off.
    pub telemetry: crate::trace::Telemetry,
}

impl RunReport {
    /// True when every task succeeded or was served from cache and no data
    /// race was detected.
    pub fn is_success(&self) -> bool {
        self.race_violations.is_empty() && self.tasks.iter().all(|t| t.status.is_ok())
    }

    /// Digest lookup by artifact name (only artifacts whose digest was
    /// actually computed).
    pub fn digest_of(&self, name: &str) -> Option<&str> {
        self.artifacts
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.digest.as_deref())
    }

    pub fn succeeded(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Succeeded)
            .count()
    }

    pub fn cached(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Cached)
            .count()
    }

    /// Tasks in a terminal error state (failed, timed out, or stalled).
    pub fn failed(&self) -> Vec<&TaskReport> {
        self.tasks.iter().filter(|t| t.status.is_error()).collect()
    }

    pub fn skipped(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Skipped)
            .count()
    }

    pub fn resumed(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Resumed)
            .count()
    }

    /// Total executed attempts across all tasks (retries included).
    pub fn total_attempts(&self) -> u32 {
        self.tasks.iter().map(|t| t.attempts).sum()
    }

    /// Total advertised bytes read by tasks (data-plane traffic in).
    pub fn total_bytes_in(&self) -> u64 {
        self.tasks.iter().map(|t| t.bytes_in).sum()
    }

    /// Total advertised bytes produced by tasks (data-plane traffic out).
    pub fn total_bytes_out(&self) -> u64 {
        self.tasks.iter().map(|t| t.bytes_out).sum()
    }

    /// Run-wide logical-plan accounting: the merge of every task's recorded
    /// [`PlanStats`]. `None` when no task recorded any.
    pub fn plan_totals(&self) -> Option<PlanStats> {
        let mut total = PlanStats::default();
        let mut any = false;
        for t in &self.tasks {
            if let Some(p) = &t.plan {
                total.merge(p);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Tasks that needed more than one attempt, `(name, attempts)`.
    pub fn retried(&self) -> Vec<(&str, u32)> {
        self.tasks
            .iter()
            .filter(|t| t.attempts > 1)
            .map(|t| (t.name.as_str(), t.attempts))
            .collect()
    }

    /// Sum of executed task durations — the work a 1-thread run would
    /// serialize.
    pub fn total_busy_ms(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration_ms()).sum()
    }

    /// Observed parallel speedup lower bound: busy time / makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 1.0;
        }
        (self.total_busy_ms() / self.makespan_ms).max(1.0)
    }

    /// Maximum number of tasks that were in flight simultaneously, measured
    /// from the recorded start/end intervals.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(f64, i32)> = Vec::new();
        for t in &self.tasks {
            if t.status == TaskStatus::Succeeded || t.status.is_error() {
                events.push((t.start_ms, 1));
                events.push((t.end_ms, -1));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        max.max(0) as usize
    }

    /// Tasks grouped by DAG depth — the paper's "tasks in the same horizontal
    /// row may be executed concurrently".
    pub fn rows(&self) -> Vec<Vec<&TaskReport>> {
        let max_depth = self.tasks.iter().map(|t| t.depth).max().unwrap_or(0);
        let mut rows: Vec<Vec<&TaskReport>> = vec![Vec::new(); max_depth + 1];
        for t in &self.tasks {
            rows[t.depth].push(t);
        }
        rows
    }

    // The report is a tree of plain strings and numbers; serialization
    // cannot fail for it.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            threads: 2,
            makespan_ms: 100.0,
            peak_resident_bytes: 4096,
            tasks: vec![
                TaskReport {
                    name: "a".into(),
                    kind: "static",
                    status: TaskStatus::Succeeded,
                    start_ms: 0.0,
                    end_ms: 60.0,
                    worker: Some(0),
                    depth: 0,
                    attempts: 1,
                    bytes_in: 0,
                    bytes_out: 1024,
                    plan: None,
                    estimate: None,
                },
                TaskReport {
                    name: "b".into(),
                    kind: "static",
                    status: TaskStatus::Succeeded,
                    start_ms: 10.0,
                    end_ms: 90.0,
                    worker: Some(1),
                    depth: 0,
                    attempts: 1,
                    bytes_in: 1024,
                    bytes_out: 512,
                    plan: None,
                    estimate: None,
                },
                TaskReport {
                    name: "c".into(),
                    kind: "user-defined",
                    status: TaskStatus::Cached,
                    start_ms: 0.0,
                    end_ms: 0.0,
                    worker: None,
                    depth: 1,
                    attempts: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    plan: None,
                    estimate: None,
                },
            ],
            artifacts: vec![ArtifactDigest {
                name: "out".into(),
                kind: "value",
                digest: Some("00000000deadbeef".into()),
            }],
            race_violations: Vec::new(),
            telemetry: crate::trace::Telemetry::default(),
        }
    }

    #[test]
    fn success_and_counts() {
        let r = report();
        assert!(r.is_success());
        assert_eq!(r.succeeded(), 2);
        assert_eq!(r.cached(), 1);
        assert_eq!(r.skipped(), 0);
        assert!(r.failed().is_empty());
    }

    #[test]
    fn busy_time_and_speedup() {
        let r = report();
        assert!((r.total_busy_ms() - 140.0).abs() < 1e-9);
        assert!((r.speedup() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn concurrency_from_overlap() {
        let r = report();
        assert_eq!(r.max_concurrency(), 2);
    }

    #[test]
    fn rows_group_by_depth() {
        let r = report();
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[1][0].name, "c");
    }

    #[test]
    fn failure_flips_success() {
        let mut r = report();
        r.tasks[0].status = TaskStatus::Failed("boom".into());
        assert!(!r.is_success());
        assert_eq!(r.failed().len(), 1);
    }

    #[test]
    fn json_is_valid() {
        let r = report();
        let parsed: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(parsed["threads"], 2);
        assert_eq!(parsed["tasks"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["peak_resident_bytes"], 4096);
        assert_eq!(parsed["tasks"][1]["bytes_in"], 1024);
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(1536 * 1024), "1.5 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn byte_totals() {
        let r = report();
        assert_eq!(r.total_bytes_in(), 1024);
        assert_eq!(r.total_bytes_out(), 1536);
    }

    #[test]
    fn digest_lookup_by_name() {
        let r = report();
        assert_eq!(r.digest_of("out"), Some("00000000deadbeef"));
        assert_eq!(r.digest_of("missing"), None);
    }

    #[test]
    fn cardpoly_arithmetic_and_eval() {
        let n = CardPoly::n();
        let c = CardPoly::konst(3);
        assert_eq!(n.add(&c).eval(10), 13);
        assert_eq!(n.mul(&n).eval(10), 100);
        assert_eq!(n.mul(&c).eval(10), 30);
        assert_eq!(n.max(&c).eval(2), 5); // max is pointwise: n + 3 at n=2
        assert_eq!(CardPoly::zero().eval(u64::MAX), 0);
    }

    #[test]
    fn cardpoly_degree_cap_widens_to_unbounded() {
        let n = CardPoly::n();
        let n2 = n.mul(&n);
        assert!(!n2.unbounded);
        assert!(n2.mul(&n).unbounded);
        assert_eq!(n2.mul(&n).eval(1), u64::MAX);
        assert!(CardPoly::unbounded().add(&CardPoly::zero()).unbounded);
    }

    #[test]
    fn cardpoly_renders_symbolically() {
        assert_eq!(CardPoly::zero().render(), "0");
        assert_eq!(CardPoly::konst(7).render(), "7");
        assert_eq!(CardPoly::n().render(), "n");
        assert_eq!(CardPoly::n().add(&CardPoly::konst(1)).render(), "n+1");
        assert_eq!(CardPoly::n().mul(&CardPoly::n()).render(), "n²");
        assert_eq!(CardPoly::unbounded().render(), "∞");
    }

    #[test]
    fn estimate_interval_containment() {
        let est = PlanEstimate {
            rows_lo: CardPoly::zero(),
            rows_hi: CardPoly::n(),
            out_row_bytes: 16,
            scan_row_bytes: 24,
        };
        assert!(est.contains_rows(100, 0));
        assert!(est.contains_rows(100, 100));
        assert!(!est.contains_rows(100, 101));
        assert_eq!(est.rows_interval(50), (0, 50));
        assert_eq!(est.bytes_hi(100), 1600);
    }

    #[test]
    fn race_violations_fail_the_run() {
        let mut r = report();
        assert!(r.is_success());
        r.race_violations.push("data race on value `x`".into());
        assert!(!r.is_success());
    }
}
