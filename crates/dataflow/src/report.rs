//! Run reports: per-task timing, status, and concurrency accounting.

use serde::Serialize;

/// Human-readable byte count for summary lines (`1.5 MiB`).
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Terminal status of one task in a run.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "status", content = "detail")]
pub enum TaskStatus {
    /// Ran to completion.
    Succeeded,
    /// Body returned an error or panicked (after exhausting retries).
    Failed(String),
    /// The watchdog saw the task exceed its deadline.
    TimedOut { elapsed_ms: u64 },
    /// The whole run stopped making progress while this task was in flight
    /// (the stall guard fired after `elapsed_ms` without any completion).
    Stalled { elapsed_ms: u64 },
    /// Not run because an upstream dependency failed.
    Skipped,
    /// Not run because its file outputs were newer than all file inputs.
    Cached,
    /// Not run because the resume manifest recorded a previous success and
    /// all file outputs still exist.
    Resumed,
}

impl TaskStatus {
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            TaskStatus::Succeeded | TaskStatus::Cached | TaskStatus::Resumed
        )
    }

    /// Terminal error states (failed, timed out, or stalled).
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            TaskStatus::Failed(_) | TaskStatus::TimedOut { .. } | TaskStatus::Stalled { .. }
        )
    }

    /// Manifest status string (see [`crate::manifest::ManifestEntry`]).
    pub fn manifest_str(&self) -> &'static str {
        match self {
            TaskStatus::Succeeded => "succeeded",
            TaskStatus::Failed(_) => "failed",
            TaskStatus::TimedOut { .. } => "timed-out",
            TaskStatus::Stalled { .. } => "stalled",
            TaskStatus::Skipped => "skipped",
            TaskStatus::Cached => "cached",
            TaskStatus::Resumed => "resumed",
        }
    }
}

/// Optimizer accounting for the logical plans a task executed (zero-valued
/// when the task ran no plans). Produced by `schedflow-frame`'s plan
/// executor, recorded through [`crate::TaskCtx::record_plan_stats`], and
/// surfaced per task in [`TaskReport::plan`] plus run-wide in
/// [`RunReport::plan_totals`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PlanStats {
    /// Logical plans executed.
    pub plans: u64,
    /// Source columns visible to the plans' scans.
    pub cols_total: u64,
    /// Source columns actually scanned after projection pruning.
    pub cols_scanned: u64,
    /// Predicate conjuncts pushed down into scans.
    pub predicates_pushed: u64,
    /// Adjacent filter nodes fused by the optimizer.
    pub filters_fused: u64,
    /// Duplicate subplans served from the common-subplan cache.
    pub subplans_deduped: u64,
    /// Estimated bytes of the columns the optimized plans touched.
    pub bytes_scanned: u64,
    /// Estimated bytes an eager full-frame execution would have touched
    /// (every source column, once per scan).
    pub bytes_eager: u64,
    /// Source rows visible to the scans.
    pub rows_in: u64,
    /// Rows in the plans' outputs.
    pub rows_out: u64,
    /// Row-gathering materializations performed (the optimizer contract is
    /// at most one per plan).
    pub materializations: u64,
}

impl PlanStats {
    /// Fold another accounting record into this one.
    pub fn merge(&mut self, other: &PlanStats) {
        self.plans += other.plans;
        self.cols_total += other.cols_total;
        self.cols_scanned += other.cols_scanned;
        self.predicates_pushed += other.predicates_pushed;
        self.filters_fused += other.filters_fused;
        self.subplans_deduped += other.subplans_deduped;
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_eager += other.bytes_eager;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.materializations += other.materializations;
    }

    /// Bytes-scanned reduction factor vs. eager execution (1.0 when nothing
    /// was saved or nothing was scanned).
    pub fn scan_reduction(&self) -> f64 {
        if self.bytes_scanned == 0 {
            return 1.0;
        }
        (self.bytes_eager as f64 / self.bytes_scanned as f64).max(1.0)
    }
}

/// Outcome of one task.
#[derive(Debug, Clone, Serialize)]
pub struct TaskReport {
    pub name: String,
    /// `"static"` or `"user-defined"` — the Figure 2 coloring.
    pub kind: &'static str,
    pub status: TaskStatus,
    /// Start offset from run begin, milliseconds. Zero for unexecuted tasks.
    pub start_ms: f64,
    /// End offset from run begin, milliseconds. Zero for unexecuted tasks.
    pub end_ms: f64,
    /// Worker thread that executed the task.
    pub worker: Option<usize>,
    /// Longest-path depth in the DAG (the Figure 2 "row").
    pub depth: usize,
    /// Executed attempts (0 for cached/resumed/skipped tasks; >1 means the
    /// retry policy re-ran the task).
    pub attempts: u32,
    /// Advertised bytes of value artifacts the task read (data-plane in).
    pub bytes_in: u64,
    /// Advertised bytes of value artifacts the task produced (data-plane out).
    pub bytes_out: u64,
    /// Logical-plan optimizer accounting, when the task executed plans and
    /// recorded them ([`crate::TaskCtx::record_plan_stats`]).
    pub plan: Option<PlanStats>,
}

impl TaskReport {
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// Content digest of one artifact produced during a run — the determinism
/// verifier's unit of comparison (`schedflow verify-run` diffs these across
/// thread counts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ArtifactDigest {
    pub name: String,
    /// `"value"` or `"file"`.
    pub kind: &'static str,
    /// Hex FNV-1a digest of the artifact content: file bytes for file
    /// artifacts, the serialized form for tracked value artifacts
    /// ([`crate::Workflow::track_digest`]). `None` when the content could
    /// not be read or serialized — deterministically so, hence still
    /// comparable across runs.
    pub digest: Option<String>,
}

/// Summary of one workflow execution.
///
/// Entries are deterministically ordered for byte-diffability across runs:
/// `tasks` in task-declaration (id) order regardless of completion order,
/// `artifacts` sorted by artifact name.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Physical concurrency (`-n N`).
    pub threads: usize,
    /// Wall time of the whole run, milliseconds.
    pub makespan_ms: f64,
    /// High-water mark of value-artifact bytes resident in the data store
    /// (advertised sizes; the lifetime tracker's drop decisions shape this).
    pub peak_resident_bytes: u64,
    pub tasks: Vec<TaskReport>,
    /// Content digests of produced artifacts (files always; value artifacts
    /// when tracked), sorted by name.
    pub artifacts: Vec<ArtifactDigest>,
    /// Counterexample traces from the dynamic race detector (task pair,
    /// artifact, vector-clock states). Non-empty means the run was aborted.
    pub race_violations: Vec<String>,
}

impl RunReport {
    /// True when every task succeeded or was served from cache and no data
    /// race was detected.
    pub fn is_success(&self) -> bool {
        self.race_violations.is_empty() && self.tasks.iter().all(|t| t.status.is_ok())
    }

    /// Digest lookup by artifact name (only artifacts whose digest was
    /// actually computed).
    pub fn digest_of(&self, name: &str) -> Option<&str> {
        self.artifacts
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.digest.as_deref())
    }

    pub fn succeeded(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Succeeded)
            .count()
    }

    pub fn cached(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Cached)
            .count()
    }

    /// Tasks in a terminal error state (failed, timed out, or stalled).
    pub fn failed(&self) -> Vec<&TaskReport> {
        self.tasks.iter().filter(|t| t.status.is_error()).collect()
    }

    pub fn skipped(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Skipped)
            .count()
    }

    pub fn resumed(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.status == TaskStatus::Resumed)
            .count()
    }

    /// Total executed attempts across all tasks (retries included).
    pub fn total_attempts(&self) -> u32 {
        self.tasks.iter().map(|t| t.attempts).sum()
    }

    /// Total advertised bytes read by tasks (data-plane traffic in).
    pub fn total_bytes_in(&self) -> u64 {
        self.tasks.iter().map(|t| t.bytes_in).sum()
    }

    /// Total advertised bytes produced by tasks (data-plane traffic out).
    pub fn total_bytes_out(&self) -> u64 {
        self.tasks.iter().map(|t| t.bytes_out).sum()
    }

    /// Run-wide logical-plan accounting: the merge of every task's recorded
    /// [`PlanStats`]. `None` when no task recorded any.
    pub fn plan_totals(&self) -> Option<PlanStats> {
        let mut total = PlanStats::default();
        let mut any = false;
        for t in &self.tasks {
            if let Some(p) = &t.plan {
                total.merge(p);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Tasks that needed more than one attempt, `(name, attempts)`.
    pub fn retried(&self) -> Vec<(&str, u32)> {
        self.tasks
            .iter()
            .filter(|t| t.attempts > 1)
            .map(|t| (t.name.as_str(), t.attempts))
            .collect()
    }

    /// Sum of executed task durations — the work a 1-thread run would
    /// serialize.
    pub fn total_busy_ms(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration_ms()).sum()
    }

    /// Observed parallel speedup lower bound: busy time / makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 1.0;
        }
        (self.total_busy_ms() / self.makespan_ms).max(1.0)
    }

    /// Maximum number of tasks that were in flight simultaneously, measured
    /// from the recorded start/end intervals.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(f64, i32)> = Vec::new();
        for t in &self.tasks {
            if t.status == TaskStatus::Succeeded || t.status.is_error() {
                events.push((t.start_ms, 1));
                events.push((t.end_ms, -1));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        max.max(0) as usize
    }

    /// Tasks grouped by DAG depth — the paper's "tasks in the same horizontal
    /// row may be executed concurrently".
    pub fn rows(&self) -> Vec<Vec<&TaskReport>> {
        let max_depth = self.tasks.iter().map(|t| t.depth).max().unwrap_or(0);
        let mut rows: Vec<Vec<&TaskReport>> = vec![Vec::new(); max_depth + 1];
        for t in &self.tasks {
            rows[t.depth].push(t);
        }
        rows
    }

    // The report is a tree of plain strings and numbers; serialization
    // cannot fail for it.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            threads: 2,
            makespan_ms: 100.0,
            peak_resident_bytes: 4096,
            tasks: vec![
                TaskReport {
                    name: "a".into(),
                    kind: "static",
                    status: TaskStatus::Succeeded,
                    start_ms: 0.0,
                    end_ms: 60.0,
                    worker: Some(0),
                    depth: 0,
                    attempts: 1,
                    bytes_in: 0,
                    bytes_out: 1024,
                    plan: None,
                },
                TaskReport {
                    name: "b".into(),
                    kind: "static",
                    status: TaskStatus::Succeeded,
                    start_ms: 10.0,
                    end_ms: 90.0,
                    worker: Some(1),
                    depth: 0,
                    attempts: 1,
                    bytes_in: 1024,
                    bytes_out: 512,
                    plan: None,
                },
                TaskReport {
                    name: "c".into(),
                    kind: "user-defined",
                    status: TaskStatus::Cached,
                    start_ms: 0.0,
                    end_ms: 0.0,
                    worker: None,
                    depth: 1,
                    attempts: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    plan: None,
                },
            ],
            artifacts: vec![ArtifactDigest {
                name: "out".into(),
                kind: "value",
                digest: Some("00000000deadbeef".into()),
            }],
            race_violations: Vec::new(),
        }
    }

    #[test]
    fn success_and_counts() {
        let r = report();
        assert!(r.is_success());
        assert_eq!(r.succeeded(), 2);
        assert_eq!(r.cached(), 1);
        assert_eq!(r.skipped(), 0);
        assert!(r.failed().is_empty());
    }

    #[test]
    fn busy_time_and_speedup() {
        let r = report();
        assert!((r.total_busy_ms() - 140.0).abs() < 1e-9);
        assert!((r.speedup() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn concurrency_from_overlap() {
        let r = report();
        assert_eq!(r.max_concurrency(), 2);
    }

    #[test]
    fn rows_group_by_depth() {
        let r = report();
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[1][0].name, "c");
    }

    #[test]
    fn failure_flips_success() {
        let mut r = report();
        r.tasks[0].status = TaskStatus::Failed("boom".into());
        assert!(!r.is_success());
        assert_eq!(r.failed().len(), 1);
    }

    #[test]
    fn json_is_valid() {
        let r = report();
        let parsed: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(parsed["threads"], 2);
        assert_eq!(parsed["tasks"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["peak_resident_bytes"], 4096);
        assert_eq!(parsed["tasks"][1]["bytes_in"], 1024);
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(1536 * 1024), "1.5 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn byte_totals() {
        let r = report();
        assert_eq!(r.total_bytes_in(), 1024);
        assert_eq!(r.total_bytes_out(), 1536);
    }

    #[test]
    fn digest_lookup_by_name() {
        let r = report();
        assert_eq!(r.digest_of("out"), Some("00000000deadbeef"));
        assert_eq!(r.digest_of("missing"), None);
    }

    #[test]
    fn race_violations_fail_the_run() {
        let mut r = report();
        assert!(r.is_success());
        r.race_violations.push("data race on value `x`".into());
        assert!(!r.is_success());
    }
}
