//! Crash-only durable artifact storage.
//!
//! Every file the workflow persists — raw sacct caches, curated CSVs, chart
//! HTML, dashboard pages, the run manifest — goes through this module, which
//! guarantees two invariants no matter where a process dies:
//!
//! 1. **Atomicity.** Writes follow the classic crash-safe protocol: write a
//!    sibling temp file, `fsync` it, `rename` it over the final path, then
//!    `fsync` the parent directory. A final artifact path therefore only ever
//!    holds a complete previous version or a complete new version — never a
//!    torn prefix.
//! 2. **Integrity.** Every payload is sealed with a fixed-width FNV-1a
//!    checksum footer (`<!--SFCK1:<16 hex>-->\n`, 30 bytes). Readers verify
//!    the footer and strip it; a mismatch means external corruption (bit
//!    rot, a truncating copy, a concurrent writer outside the store) and the
//!    file is *quarantined* — renamed to `<name>.corrupt` — so the producing
//!    task re-executes instead of parsing garbage.
//!
//! The filesystem itself is reached through the injectable [`Fs`] handle.
//! [`RealFs`] talks to the OS; the chaos engine wraps it with [`ChaosFs`] to
//! inject deterministic I/O faults (torn writes, `ENOSPC`, `EIO`) and
//! simulated process death at the n-th store write
//! ([`crate::Fault::CrashAfterWrites`]) — the machinery behind
//! `schedflow chaos --io-*` / `--crash-after` and the crash–resume
//! convergence harness.
//!
//! Library write sites (frame CSV, chart HTML, dashboard pages) resolve the
//! handle via [`ambient`]: inside a running task the executor scopes the
//! task's (possibly chaos-wrapped) store onto the worker thread, so fault
//! injection reaches every write without threading a handle through each
//! signature; outside a task the ambient store is the real filesystem.

use crate::chaos::{ChaosConfig, Fault};
use crate::fnv::fnv1a_bytes;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Footer prefix; `SFCK1` names the checksum format (FNV-1a 64, version 1).
const FOOTER_PREFIX: &str = "<!--SFCK1:";
const FOOTER_SUFFIX: &str = "-->\n";
/// Total footer width: prefix (10) + 16 hex digits + suffix (4).
pub const FOOTER_LEN: usize = 30;

/// Marker embedded in the panic message of an injected crash so the executor
/// can tell simulated process death apart from an ordinary task panic.
pub const CRASH_MARKER: &str = "schedflow-injected-crash";

/// Render the checksum footer for a payload.
pub fn footer_for(payload: &[u8]) -> String {
    format!(
        "{FOOTER_PREFIX}{:016x}{FOOTER_SUFFIX}",
        fnv1a_bytes(payload)
    )
}

/// Parse a trailing checksum footer: `Some((payload, stored_checksum))` when
/// the last [`FOOTER_LEN`] bytes are syntactically a footer (the checksum is
/// *not* validated here).
pub fn split_footer(bytes: &[u8]) -> Option<(&[u8], u64)> {
    if bytes.len() < FOOTER_LEN {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let tail = std::str::from_utf8(tail).ok()?;
    let hex = tail
        .strip_prefix(FOOTER_PREFIX)?
        .strip_suffix(FOOTER_SUFFIX)?;
    let stored = u64::from_str_radix(hex, 16).ok()?;
    Some((payload, stored))
}

/// The checksum-stripped view used for content digests: the payload when a
/// *valid* footer is present, the raw bytes otherwise. Corrupt files hash to
/// their (corrupt) full contents, so digest comparison still flags them.
pub fn payload_of(bytes: &[u8]) -> &[u8] {
    match split_footer(bytes) {
        Some((payload, stored)) if fnv1a_bytes(payload) == stored => payload,
        _ => bytes,
    }
}

/// [`payload_of`] for text read via `read_to_string`.
pub fn strip_footer_str(s: &str) -> &str {
    match split_footer(s.as_bytes()) {
        Some((payload, stored)) if fnv1a_bytes(payload) == stored => &s[..s.len() - FOOTER_LEN],
        _ => s,
    }
}

/// Verification status of a file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileCheck {
    /// Footer present and checksum matches the payload.
    Verified,
    /// No footer — a legacy or externally produced file.
    Unchecksummed,
    /// Footer present but the checksum does not match: the file is damaged.
    Corrupt,
}

/// A verified read: the payload with the footer stripped (when present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    Verified(Vec<u8>),
    Unchecksummed(Vec<u8>),
}

impl Payload {
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Verified(b) | Payload::Unchecksummed(b) => b,
        }
    }

    pub fn is_verified(&self) -> bool {
        matches!(self, Payload::Verified(_))
    }
}

/// The injectable filesystem primitive set the durable store is built on.
///
/// Implementations must be cheap to share across worker threads; the chaos
/// engine substitutes a fault-injecting wrapper per task attempt.
pub trait Fs: Send + Sync {
    /// Create (truncating) `path`, write all of `bytes`, and `fsync`.
    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// `fsync` a directory so a preceding rename survives power loss.
    /// Best-effort on platforms where directories cannot be opened.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Fs for RealFs {
    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// Shared countdown to an injected crash: process death is simulated at the
/// `after`-th store write *across the whole run*, so the crash point moves
/// through the pipeline as the counter is varied.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    pub after: u64,
    pub counter: Arc<AtomicU64>,
}

impl CrashPlan {
    pub fn new(after: u64) -> Self {
        CrashPlan {
            after,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Fault-injecting [`Fs`] wrapper. Probabilistic I/O faults are a pure
/// function of `(chaos seed, task name, attempt, write ordinal)`; the crash
/// countdown is shared across all tasks of a run.
pub struct ChaosFs {
    inner: Arc<dyn Fs>,
    cfg: ChaosConfig,
    /// Whether the chaos scope covers this task's stage kind; the crash
    /// countdown applies regardless (process death is not per-stage).
    covered: bool,
    task: String,
    attempt: u32,
    /// Writes issued through this handle so far (one task attempt's stream).
    ordinal: AtomicU64,
    crash: Option<CrashPlan>,
}

impl ChaosFs {
    pub fn new(
        inner: Arc<dyn Fs>,
        cfg: ChaosConfig,
        covered: bool,
        task: &str,
        attempt: u32,
        crash: Option<CrashPlan>,
    ) -> Self {
        ChaosFs {
            inner,
            cfg,
            covered,
            task: task.to_owned(),
            attempt,
            ordinal: AtomicU64::new(0),
            crash,
        }
    }
}

impl Fs for ChaosFs {
    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some(plan) = &self.crash {
            let k = plan.counter.fetch_add(1, Ordering::SeqCst) + 1;
            if k == plan.after {
                panic!(
                    "{CRASH_MARKER}: simulated process death at store write {k} ({})",
                    path.display()
                );
            }
        }
        let w = self.ordinal.fetch_add(1, Ordering::SeqCst);
        if self.covered {
            match self.cfg.io_fault(&self.task, self.attempt, w) {
                Some(Fault::IoTorn) => {
                    // A torn write: half the bytes land, then the device
                    // gives up. The atomic protocol confines the damage to
                    // the temp file — the final path is never touched.
                    let cut = bytes.len() / 2;
                    let _ = self.inner.write_all(path, &bytes[..cut]);
                    return Err(io::Error::other(format!(
                        "injected torn write: {cut} of {} bytes reached {}",
                        bytes.len(),
                        path.display()
                    )));
                }
                Some(Fault::IoEnospc) => {
                    return Err(io::Error::from_raw_os_error(28)); // ENOSPC
                }
                Some(Fault::IoEio) => {
                    return Err(io::Error::from_raw_os_error(5)); // EIO
                }
                _ => {}
            }
        }
        self.inner.write_all(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

/// Handle to durable storage: the atomic-write protocol plus checksum
/// verification, over an injectable [`Fs`].
#[derive(Clone)]
pub struct DurableStore {
    fs: Arc<dyn Fs>,
}

impl Default for DurableStore {
    fn default() -> Self {
        DurableStore::real()
    }
}

impl DurableStore {
    /// A store over the real filesystem.
    pub fn real() -> Self {
        DurableStore {
            fs: Arc::new(RealFs),
        }
    }

    pub fn with_fs(fs: Arc<dyn Fs>) -> Self {
        DurableStore { fs }
    }

    /// Atomically persist `payload` (plus checksum footer) at `path`:
    /// temp file → fsync → rename → parent-dir fsync. On any error the final
    /// path is untouched (it keeps its previous complete contents, if any).
    ///
    /// Each call is recorded as an `artifact-write` span on the calling task
    /// attempt's trace buffer (a no-op outside traced runs).
    pub fn write_atomic(&self, path: &Path, payload: &[u8]) -> io::Result<()> {
        let t0 = std::time::Instant::now();
        let result = self.write_atomic_inner(path, payload);
        crate::trace::note_write(path, payload.len() as u64, result.is_ok(), t0.elapsed());
        result
    }

    fn write_atomic_inner(&self, path: &Path, payload: &[u8]) -> io::Result<()> {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = parent {
            self.fs.create_dir_all(dir)?;
        }
        let mut bytes = Vec::with_capacity(payload.len() + FOOTER_LEN);
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(footer_for(payload).as_bytes());
        let tmp = tmp_path(path);
        self.fs.write_all(&tmp, &bytes)?;
        self.fs.rename(&tmp, path)?;
        if let Some(dir) = parent {
            self.fs.sync_dir(dir)?;
        }
        Ok(())
    }

    /// Verify `path` without consuming it (and without quarantining).
    pub fn check_file(&self, path: &Path) -> io::Result<FileCheck> {
        let bytes = self.fs.read(path)?;
        Ok(match split_footer(&bytes) {
            Some((payload, stored)) => {
                if fnv1a_bytes(payload) == stored {
                    FileCheck::Verified
                } else {
                    FileCheck::Corrupt
                }
            }
            None => FileCheck::Unchecksummed,
        })
    }

    /// Move a damaged file aside to `<name>.corrupt` and return its new home.
    pub fn quarantine(&self, path: &Path) -> io::Result<PathBuf> {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let target = path.with_file_name(format!("{name}.corrupt"));
        self.fs.rename(path, &target)?;
        Ok(target)
    }

    /// Read and verify: returns the footer-stripped payload. A checksum
    /// mismatch quarantines the file and surfaces as
    /// [`io::ErrorKind::InvalidData`] naming the quarantine path.
    pub fn read_verified(&self, path: &Path) -> io::Result<Payload> {
        let bytes = self.fs.read(path)?;
        match split_footer(&bytes) {
            Some((payload, stored)) => {
                if fnv1a_bytes(payload) == stored {
                    Ok(Payload::Verified(payload.to_vec()))
                } else {
                    let to = self.quarantine(path)?;
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checksum mismatch in {}: quarantined to {}",
                            path.display(),
                            to.display()
                        ),
                    ))
                }
            }
            None => Ok(Payload::Unchecksummed(bytes)),
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{name}.tmp"))
}

/// Probe whether `dir` supports the store's atomic-rename protocol. Fails on
/// paths that cannot be created (e.g. a cache dir configured over an
/// existing file) or where rename is refused — the SF0701 lint's signal.
pub fn atomic_rename_probe(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(".schedflow-rename-probe");
    let target = dir.join(".schedflow-rename-probe.ok");
    std::fs::write(&probe, b"probe")?;
    let renamed = std::fs::rename(&probe, &target);
    let _ = std::fs::remove_file(&probe);
    let _ = std::fs::remove_file(&target);
    renamed
}

// ---- Ambient store: the executor scopes each task's (possibly
// chaos-wrapped) store onto the worker thread for the duration of the body,
// so library write sites pick up fault injection without plumbing. ----

thread_local! {
    static AMBIENT: std::cell::RefCell<Vec<DurableStore>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with `store` as the thread's ambient durable store. Unwind-safe:
/// the previous ambient store is restored even if `f` panics.
pub fn with_ambient<R>(store: &DurableStore, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(store.clone()));
    let _pop = Pop;
    f()
}

/// The thread's ambient durable store — the executing task's handle inside a
/// task body, the real filesystem everywhere else.
pub fn ambient() -> DurableStore {
    AMBIENT
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("schedflow-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn footer_round_trip() {
        let payload = b"a,b,c\n1,2,3\n";
        let footer = footer_for(payload);
        assert_eq!(footer.len(), FOOTER_LEN);
        let mut bytes = payload.to_vec();
        bytes.extend_from_slice(footer.as_bytes());
        let (p, stored) = split_footer(&bytes).unwrap();
        assert_eq!(p, payload);
        assert_eq!(stored, crate::fnv::fnv1a_bytes(payload));
        assert_eq!(payload_of(&bytes), payload);
        let s = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(strip_footer_str(&s), "a,b,c\n1,2,3\n");
    }

    #[test]
    fn footerless_bytes_pass_through() {
        assert_eq!(split_footer(b"short"), None);
        assert_eq!(payload_of(b"no footer here"), b"no footer here");
        assert_eq!(strip_footer_str("plain"), "plain");
    }

    #[test]
    fn write_read_verify_cycle() {
        let dir = tmp_dir("cycle");
        let path = dir.join("artifact.csv");
        let store = DurableStore::real();
        store.write_atomic(&path, b"hello world").unwrap();
        assert_eq!(store.check_file(&path).unwrap(), FileCheck::Verified);
        let payload = store.read_verified(&path).unwrap();
        assert!(payload.is_verified());
        assert_eq!(payload.into_bytes(), b"hello world");
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_quarantined_on_read() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("data.txt");
        let store = DurableStore::real();
        store.write_atomic(&path, b"pristine payload").unwrap();
        // Flip a payload byte, leaving the footer in place.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.check_file(&path).unwrap(), FileCheck::Corrupt);
        let err = store.read_verified(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!path.exists(), "corrupt file must be moved aside");
        assert!(dir.join("data.txt.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_files_read_as_unchecksummed() {
        let dir = tmp_dir("legacy");
        let path = dir.join("old.txt");
        std::fs::write(&path, b"written before the store existed").unwrap();
        let store = DurableStore::real();
        assert_eq!(store.check_file(&path).unwrap(), FileCheck::Unchecksummed);
        let p = store.read_verified(&path).unwrap();
        assert!(!p.is_verified());
        assert_eq!(p.into_bytes(), b"written before the store existed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn io_chaos(torn: f64, enospc: f64, eio: f64) -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            io_torn_p: torn,
            io_enospc_p: enospc,
            io_eio_p: eio,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn torn_write_never_reaches_the_final_path() {
        let dir = tmp_dir("torn");
        let path = dir.join("out.html");
        let store = DurableStore::with_fs(Arc::new(ChaosFs::new(
            Arc::new(RealFs),
            io_chaos(1.0, 0.0, 0.0),
            true,
            "plot-waits",
            1,
            None,
        )));
        let err = store.write_atomic(&path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert!(!path.exists(), "final path must never hold a torn file");
        // The damage is confined to the temp file.
        let tmp = tmp_path(&path);
        assert!(tmp.exists());
        assert_eq!(std::fs::read(&tmp).unwrap().len(), (10 + FOOTER_LEN) / 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_and_eio_surface_their_os_codes() {
        let dir = tmp_dir("errno");
        let store_of = |cfg: ChaosConfig| {
            DurableStore::with_fs(Arc::new(ChaosFs::new(
                Arc::new(RealFs),
                cfg,
                true,
                "t",
                1,
                None,
            )))
        };
        let enospc = store_of(io_chaos(0.0, 1.0, 0.0))
            .write_atomic(&dir.join("a"), b"x")
            .unwrap_err();
        assert_eq!(enospc.raw_os_error(), Some(28));
        let eio = store_of(io_chaos(0.0, 0.0, 1.0))
            .write_atomic(&dir.join("b"), b"x")
            .unwrap_err();
        assert_eq!(eio.raw_os_error(), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_faults_are_deterministic_per_seed_and_retry_can_clear_them() {
        let cfg = ChaosConfig {
            seed: 13,
            io_eio_p: 0.5,
            ..ChaosConfig::default()
        };
        let schedule = |attempt: u32| -> Vec<bool> {
            (0..20)
                .map(|w| cfg.io_fault("obtain-2024-01", attempt, w).is_some())
                .collect()
        };
        assert_eq!(schedule(1), schedule(1), "same seed, same schedule");
        assert_ne!(schedule(1), schedule(2), "fresh dice per attempt");
        assert!(schedule(1).iter().any(|&f| f));
        assert!(schedule(1).iter().any(|&f| !f));
    }

    #[test]
    fn crash_plan_panics_at_the_nth_write_with_marker() {
        let dir = tmp_dir("crash");
        let plan = CrashPlan::new(3);
        let store = DurableStore::with_fs(Arc::new(ChaosFs::new(
            Arc::new(RealFs),
            ChaosConfig::default(),
            true,
            "t",
            1,
            Some(plan.clone()),
        )));
        store.write_atomic(&dir.join("w1"), b"1").unwrap();
        store.write_atomic(&dir.join("w2"), b"2").unwrap();
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.write_atomic(&dir.join("w3"), b"3")
        }))
        .unwrap_err();
        let msg = died.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(CRASH_MARKER), "{msg}");
        assert!(!dir.join("w3").exists());
        // Writes before the crash are durable and verified.
        assert_eq!(
            DurableStore::real().check_file(&dir.join("w2")).unwrap(),
            FileCheck::Verified
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_probe_fails_on_a_file_path() {
        let dir = tmp_dir("probe");
        assert!(atomic_rename_probe(&dir).is_ok());
        let not_a_dir = dir.join("occupied");
        std::fs::write(&not_a_dir, b"file").unwrap();
        assert!(atomic_rename_probe(&not_a_dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ambient_store_scopes_and_restores() {
        let base = ambient();
        base.write_atomic(&tmp_dir("ambient").join("x"), b"x")
            .unwrap();
        let chaos = DurableStore::with_fs(Arc::new(ChaosFs::new(
            Arc::new(RealFs),
            io_chaos(0.0, 1.0, 0.0),
            true,
            "t",
            1,
            None,
        )));
        let dir = tmp_dir("ambient2");
        let result = with_ambient(&chaos, || ambient().write_atomic(&dir.join("y"), b"y"));
        assert_eq!(result.unwrap_err().raw_os_error(), Some(28));
        // Outside the scope the ambient store is clean again.
        assert!(ambient().write_atomic(&dir.join("z"), b"z").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
