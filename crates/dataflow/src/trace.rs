//! Observability: deterministic spans, counters, log2 histograms, and the
//! critical-path analyzer (the `obs` surface).
//!
//! The pipeline's behavior is provable statically (the SF01xx–SF09xx
//! analyses) but was invisible at runtime: no per-task timing breakdown, no
//! span tree, no answer to "what would make this run faster?". This module
//! adds that substrate without giving up the engine's replay guarantees:
//!
//! * **Deterministic span identities.** Every span id is a pure function of
//!   `(trace seed, kind, task name, attempt, ordinal)` through the shared
//!   FNV-1a/splitmix64 machinery — never of wall-clock time or thread
//!   identity — so the *structural* trace (ids, parents, kinds, outcomes,
//!   byte counts) is identical at 1 and N worker threads under a fixed seed.
//!   [`structural_digest`] hashes exactly that timing-free view; the
//!   `repro_trace` bench gate and the `trace_properties` proptests compare
//!   digests across thread counts.
//! * **Lock-free per-thread event buffers.** Worker-side events (artifact
//!   writes from the durable store, data-parallel kernels, race-tracker
//!   violations) land in a thread-local sink active for the duration of one
//!   task attempt — no locks, no channels on the hot path — and ship to the
//!   executor's event loop inside the attempt's completion message, where
//!   they are merged with the engine-side spans (queue-wait, run, retry
//!   backoff, checkpoint).
//! * **Aggregation.** Counters and log2-bucket [`Histogram`]s (task latency,
//!   bytes in/out, retries, store fsyncs) summarize the span stream into
//!   [`Telemetry`], which rides on [`crate::RunReport::telemetry`].
//! * **Critical path.** [`critical_path`] computes the longest dependent
//!   chain weighted by per-task self-time over the executed DAG, and
//!   "headroom" = wall-clock − critical-path: the maximum speedup any
//!   scheduling improvement could still extract without making tasks faster.
//!
//! Exports: Chrome trace-event JSON ([`to_chrome_json`], loadable in
//! Perfetto via `schedflow run --trace-out`), the `schedflow trace <run>`
//! CLI summary ([`render_summary`]), and the dashboard "Timeline" panel.

use crate::error::splitmix64;
use crate::fnv::Fnv1a;
use crate::report::{TaskReport, TaskStatus};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Span kind tags. Stored as strings in [`SpanEvent::kind`] so persisted
/// telemetry stays stable across serializer versions.
pub const KIND_QUEUE: &str = "queue-wait";
pub const KIND_RUN: &str = "run";
pub const KIND_RETRY: &str = "retry-backoff";
pub const KIND_CHECKPOINT: &str = "checkpoint";
pub const KIND_WRITE: &str = "artifact-write";
pub const KIND_PAR: &str = "par-kernel";
pub const KIND_RACE: &str = "race-violation";

/// One span of the run: a named interval with a deterministic identity.
///
/// `parent` is the id of the enclosing span (`0` = root). Worker-side child
/// spans (artifact writes, par kernels, race events) parent to their
/// attempt's `run` span; engine-side spans are roots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Deterministic identity: FNV-1a/splitmix64 over
    /// `(seed, kind, task, attempt, ordinal)`. Never 0.
    pub id: u64,
    /// Enclosing span id, or 0 for a root span.
    pub parent: u64,
    /// One of the `KIND_*` tags.
    pub kind: String,
    /// Task the span belongs to (or that triggered it, for checkpoints).
    pub task: String,
    /// Attempt number (1-based; 0 for per-task spans like queue-wait and for
    /// synthesized cached/resumed spans).
    pub attempt: u32,
    /// Milliseconds since run start (fractional).
    pub start_ms: f64,
    pub end_ms: f64,
    /// Worker index + 1; 0 = the engine's event-loop thread.
    pub worker: u32,
    /// False marks a failing attempt / failed write / detected violation.
    pub ok: bool,
    /// Human context (error class, kernel label, file name). Excluded from
    /// the structural digest: it may carry sandbox-specific paths.
    pub detail: String,
    /// Bytes moved (payload written, task bytes in+out). 0 when not
    /// applicable.
    pub bytes: u64,
}

impl SpanEvent {
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// A dependency edge of the executed DAG (`from` must finish before `to`
/// starts), persisted so the critical path can be recomputed offline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEdge {
    pub from: String,
    pub to: String,
}

/// Monotone counters aggregated over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounters {
    /// Tasks that executed at least one attempt.
    pub tasks_executed: u64,
    /// Total attempts across all tasks.
    pub attempts: u64,
    /// Retries (attempts beyond each task's first).
    pub retries: u64,
    /// Total spans recorded.
    pub spans: u64,
    /// Durable-store atomic writes observed inside task attempts.
    pub store_writes: u64,
    /// fsync calls those writes performed (2 per successful atomic write:
    /// the temp-file `sync_all` plus the parent-directory sync).
    pub store_fsyncs: u64,
    /// Data-parallel kernel invocations that actually went parallel.
    pub par_kernels: u64,
    /// Happens-before violations the race tracker reported.
    pub race_events: u64,
    /// Checkpoint manifest writes.
    pub checkpoints: u64,
}

/// A log2-bucket histogram: bucket `i` counts values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 holds zeros and bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`. Trailing empty buckets are trimmed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl Histogram {
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            ..Histogram::default()
        }
    }

    /// Log2 bucket index of a value: 0 for 0, else its bit length.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// One summary line: `name: n=…, mean=…, max=…, buckets=[…]`.
    pub fn render_line(&self) -> String {
        format!(
            "{}: n={}, mean={:.1}, max={}, log2 buckets {:?}",
            self.name,
            self.count,
            self.mean(),
            self.max,
            self.buckets
        )
    }
}

/// The run's aggregated observability record, carried on
/// [`crate::RunReport::telemetry`] and persisted as `run-telemetry.json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// False when the run executed with tracing off (everything else empty).
    pub enabled: bool,
    /// The seed span identities derive from.
    pub seed: u64,
    pub threads: u64,
    pub makespan_ms: f64,
    pub spans: Vec<SpanEvent>,
    pub counters: TraceCounters,
    pub histograms: Vec<Histogram>,
    /// Dependency edges of the executed DAG (for offline critical-path
    /// recomputation and span-tree reconstruction).
    pub edges: Vec<DepEdge>,
}

impl Telemetry {
    /// Spans of one kind, in stored order.
    pub fn spans_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a SpanEvent> + 'a {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Σ per-task total latency (queue wait + attempts + backoffs): for each
    /// executed task, last `run`-span end minus queue-wait start (falling
    /// back to first attempt start). The "sum-of-task-times" of the
    /// `repro_trace` invariant `critical ≤ wall ≤ sum`: at every instant of
    /// the run at least one task is pending or running, so the per-task
    /// latencies cover the wall clock up to event-loop latency.
    pub fn sum_of_task_times_ms(&self) -> f64 {
        use std::collections::HashMap;
        let mut first_start: HashMap<&str, f64> = HashMap::new();
        let mut last_end: HashMap<&str, f64> = HashMap::new();
        for s in self.spans_of(KIND_RUN).filter(|s| s.attempt >= 1) {
            let f = first_start.entry(&s.task).or_insert(s.start_ms);
            *f = f.min(s.start_ms);
            let l = last_end.entry(&s.task).or_insert(s.end_ms);
            *l = l.max(s.end_ms);
        }
        for s in self.spans_of(KIND_QUEUE) {
            if let Some(f) = first_start.get_mut(s.task.as_str()) {
                *f = f.min(s.start_ms);
            }
        }
        first_start
            .iter()
            .map(|(task, start)| (last_end.get(task).copied().unwrap_or(*start) - start).max(0.0))
            .sum()
    }

    /// Serialize the full record (persisted as `run-telemetry.json`).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // plain data types: serialization is infallible
        serde_json::to_string_pretty(self).expect("telemetry serializes")
    }

    /// Parse a record persisted by [`Telemetry::to_json`].
    pub fn from_json(s: &str) -> Option<Telemetry> {
        serde_json::from_str(s).ok()
    }
}

/// Deterministic span identity: FNV-1a over the logical coordinates, mixed
/// through splitmix64. Independent of timing and thread placement, so the
/// same workflow at the same seed produces the same ids at any thread count.
pub fn span_id(seed: u64, kind: &str, task: &str, attempt: u32, ordinal: u32) -> u64 {
    let mut h = Fnv1a::new();
    h.update_u64(seed);
    h.update_str(kind);
    h.update_str(task);
    h.update_u64(u64::from(attempt));
    h.update_u64(u64::from(ordinal));
    let id = splitmix64(h.finish());
    if id == 0 {
        1 // 0 is the root-parent sentinel
    } else {
        id
    }
}

// ---- Worker-side event collection (lock-free per-thread buffers). ----

/// One worker-side event, recorded inside a task attempt and shipped to the
/// event loop in the attempt's completion message.
#[derive(Debug, Clone)]
pub struct TraceNote {
    pub kind: &'static str,
    pub start_ms: f64,
    pub end_ms: f64,
    pub ok: bool,
    pub detail: String,
    pub bytes: u64,
}

struct AttemptSink {
    /// Run anchor, so notes carry run-relative timestamps.
    anchor: Instant,
    notes: Vec<TraceNote>,
}

thread_local! {
    /// The attempt sink stack of this worker thread (mirrors the durable
    /// store's ambient stack; attempts never nest in practice, but a stack
    /// keeps begin/end trivially balanced).
    static SINK: RefCell<Vec<AttemptSink>> = const { RefCell::new(Vec::new()) };
}

/// Open a per-thread event buffer for one task attempt. Paired with
/// [`end_attempt`]; both run on the worker thread executing the attempt.
pub(crate) fn begin_attempt(anchor: Instant) {
    SINK.with(|s| {
        s.borrow_mut().push(AttemptSink {
            anchor,
            notes: Vec::new(),
        });
    });
}

/// Close the attempt buffer and harvest its notes.
pub(crate) fn end_attempt() -> Vec<TraceNote> {
    SINK.with(|s| s.borrow_mut().pop().map(|a| a.notes).unwrap_or_default())
}

/// Record one completed sub-operation of the current attempt. A no-op when
/// no attempt buffer is open on this thread (tracing off, or the caller runs
/// outside the engine), so instrumented library code costs nothing outside
/// traced runs.
fn note(
    kind: &'static str,
    elapsed: Duration,
    ok: bool,
    bytes: u64,
    detail: impl FnOnce() -> String,
) {
    SINK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(sink) = stack.last_mut() {
            let end_ms = sink.anchor.elapsed().as_secs_f64() * 1000.0;
            let start_ms = (end_ms - elapsed.as_secs_f64() * 1000.0).max(0.0);
            sink.notes.push(TraceNote {
                kind,
                start_ms,
                end_ms,
                ok,
                detail: detail(),
                bytes,
            });
        }
    });
}

/// Durable-store hook: one atomic artifact write (called by
/// [`crate::store::DurableStore::write_atomic`]).
pub(crate) fn note_write(path: &std::path::Path, bytes: u64, ok: bool, elapsed: Duration) {
    note(KIND_WRITE, elapsed, ok, bytes, || {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string())
    });
}

/// Data-parallel kernel hook: one kernel invocation that actually went
/// parallel (called by [`crate::par`]).
pub(crate) fn note_par(label: &'static str, items: u64, elapsed: Duration) {
    note(KIND_PAR, elapsed, true, items, || {
        format!("{label} n={items}")
    });
}

/// Race-tracker hook: a happens-before violation, recorded as an instant
/// event on the detecting attempt (called by [`crate::race::RaceTracker`]).
pub(crate) fn note_race(detail: String) {
    note(KIND_RACE, Duration::ZERO, false, 0, || detail);
}

// ---- Engine-side builder (owned by the executor's event loop). ----

/// Accumulates spans on the executor's event-loop thread and aggregates them
/// into [`Telemetry`] at run end. Single-threaded by construction.
pub(crate) struct TraceBuilder {
    enabled: bool,
    seed: u64,
    spans: Vec<SpanEvent>,
    counters: TraceCounters,
    edges: Vec<DepEdge>,
    /// Per-task: queue-wait span already emitted.
    queue_done: Vec<bool>,
}

impl TraceBuilder {
    pub fn new(enabled: bool, seed: u64, n_tasks: usize, edges: Vec<DepEdge>) -> Self {
        TraceBuilder {
            enabled,
            seed,
            spans: Vec::new(),
            counters: TraceCounters::default(),
            edges: if enabled { edges } else { Vec::new() },
            queue_done: vec![false; n_tasks],
        }
    }

    fn push(&mut self, span: SpanEvent) {
        self.spans.push(span);
    }

    /// One attempt resolved (success or failure): emit the queue-wait span
    /// (first completion only), the attempt's `run` span, and its worker-side
    /// child spans.
    #[allow(clippy::too_many_arguments)]
    pub fn attempt_finished(
        &mut self,
        task_index: usize,
        task: &str,
        attempt: u32,
        ready_ms: f64,
        start_ms: f64,
        end_ms: f64,
        worker: Option<usize>,
        ok: bool,
        detail: &str,
        bytes: u64,
        notes: Vec<TraceNote>,
    ) {
        if !self.enabled {
            return;
        }
        let worker = worker.map_or(0, |w| w as u32 + 1);
        if !self.queue_done[task_index] {
            self.queue_done[task_index] = true;
            self.push(SpanEvent {
                id: span_id(self.seed, KIND_QUEUE, task, 0, 0),
                parent: 0,
                kind: KIND_QUEUE.to_owned(),
                task: task.to_owned(),
                attempt: 0,
                start_ms: ready_ms.min(start_ms),
                end_ms: start_ms,
                worker: 0,
                ok: true,
                detail: String::new(),
                bytes: 0,
            });
        }
        let run_id = span_id(self.seed, KIND_RUN, task, attempt, 0);
        self.push(SpanEvent {
            id: run_id,
            parent: 0,
            kind: KIND_RUN.to_owned(),
            task: task.to_owned(),
            attempt,
            start_ms,
            end_ms,
            worker,
            ok,
            detail: detail.to_owned(),
            bytes,
        });
        // Child ordinals are assigned per kind in note order — the body is
        // sequential, so the ordering (and hence every child id) is
        // deterministic.
        let mut ordinals: std::collections::HashMap<&'static str, u32> =
            std::collections::HashMap::new();
        for n in notes {
            let ord = ordinals.entry(n.kind).or_insert(0);
            let id = span_id(self.seed, n.kind, task, attempt, *ord);
            *ord += 1;
            match n.kind {
                KIND_WRITE => {
                    self.counters.store_writes += 1;
                    if n.ok {
                        self.counters.store_fsyncs += 2;
                    }
                }
                KIND_PAR => self.counters.par_kernels += 1,
                KIND_RACE => self.counters.race_events += 1,
                _ => {}
            }
            self.push(SpanEvent {
                id,
                parent: run_id,
                kind: n.kind.to_owned(),
                task: task.to_owned(),
                attempt,
                start_ms: n.start_ms,
                end_ms: n.end_ms,
                worker,
                ok: n.ok,
                detail: n.detail,
                bytes: n.bytes,
            });
        }
    }

    /// A retry was scheduled after failed attempt `attempt`: record the
    /// planned backoff window.
    pub fn retry_scheduled(&mut self, task: &str, attempt: u32, now_ms: f64, delay_ms: u64) {
        if !self.enabled {
            return;
        }
        self.push(SpanEvent {
            id: span_id(self.seed, KIND_RETRY, task, attempt, 0),
            parent: 0,
            kind: KIND_RETRY.to_owned(),
            task: task.to_owned(),
            attempt,
            start_ms: now_ms,
            end_ms: now_ms + delay_ms as f64,
            worker: 0,
            ok: true,
            detail: format!("backoff before attempt {}", attempt + 1),
            bytes: 0,
        });
    }

    /// One checkpoint manifest write, keyed by the completion that triggered
    /// it (so the span set is thread-count-invariant).
    pub fn checkpoint(&mut self, trigger: &str, attempt: u32, start_ms: f64, end_ms: f64) {
        if !self.enabled {
            return;
        }
        self.counters.checkpoints += 1;
        self.push(SpanEvent {
            id: span_id(self.seed, KIND_CHECKPOINT, trigger, attempt, 0),
            parent: 0,
            kind: KIND_CHECKPOINT.to_owned(),
            task: trigger.to_owned(),
            attempt,
            start_ms,
            end_ms,
            worker: 0,
            ok: true,
            detail: "manifest".to_owned(),
            bytes: 0,
        });
    }

    /// Aggregate everything into [`Telemetry`]: synthesize spans for tasks
    /// that resolved without executing (cached/resumed), build the counters
    /// and log2 histograms, and order spans deterministically.
    pub fn finish(mut self, reports: &[TaskReport], makespan_ms: f64, threads: usize) -> Telemetry {
        if !self.enabled {
            return Telemetry::default();
        }
        let mut latency = Histogram::new("task_latency_ms");
        let mut bytes_in = Histogram::new("bytes_in");
        let mut bytes_out = Histogram::new("bytes_out");
        let mut retries = Histogram::new("retries");
        let mut fsyncs = Histogram::new("store_fsyncs");
        let mut write_counts: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind == KIND_WRITE && s.ok {
                *write_counts.entry(s.task.clone()).or_insert(0) += 2;
            }
        }
        for t in reports {
            match t.status {
                TaskStatus::Cached | TaskStatus::Resumed => {
                    // Resolved synchronously at dispatch — synthesize a
                    // zero-length marker span so the timeline stays complete.
                    self.spans.push(SpanEvent {
                        id: span_id(self.seed, KIND_RUN, &t.name, 0, 0),
                        parent: 0,
                        kind: KIND_RUN.to_owned(),
                        task: t.name.clone(),
                        attempt: 0,
                        start_ms: t.start_ms,
                        end_ms: t.end_ms,
                        worker: 0,
                        ok: true,
                        detail: t.status.manifest_str().to_owned(),
                        bytes: 0,
                    });
                }
                TaskStatus::TimedOut { .. } | TaskStatus::Stalled { .. } => {
                    // The attempt never completed, so no worker-side span
                    // exists; record the terminal interval the watchdog saw.
                    self.spans.push(SpanEvent {
                        id: span_id(self.seed, KIND_RUN, &t.name, t.attempts, 0),
                        parent: 0,
                        kind: KIND_RUN.to_owned(),
                        task: t.name.clone(),
                        attempt: t.attempts,
                        start_ms: t.start_ms,
                        end_ms: t.end_ms,
                        worker: 0,
                        ok: false,
                        detail: t.status.manifest_str().to_owned(),
                        bytes: 0,
                    });
                }
                _ => {}
            }
            if t.attempts >= 1 {
                self.counters.tasks_executed += 1;
                self.counters.attempts += u64::from(t.attempts);
                self.counters.retries += u64::from(t.attempts.saturating_sub(1));
                latency.record(t.duration_ms() as u64);
                bytes_in.record(t.bytes_in);
                bytes_out.record(t.bytes_out);
                retries.record(u64::from(t.attempts.saturating_sub(1)));
                fsyncs.record(write_counts.get(t.name.as_str()).copied().unwrap_or(0));
            }
        }
        // Deterministic order for rendering: by start time, id-tiebroken.
        self.spans.sort_by(|a, b| {
            a.start_ms
                .partial_cmp(&b.start_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        self.counters.spans = self.spans.len() as u64;
        let mut edges = std::mem::take(&mut self.edges);
        edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        Telemetry {
            enabled: true,
            seed: self.seed,
            threads: threads as u64,
            makespan_ms,
            spans: std::mem::take(&mut self.spans),
            counters: self.counters,
            histograms: vec![latency, bytes_in, bytes_out, retries, fsyncs],
            edges,
        }
    }
}

// ---- Analysis: structural digest and critical path. ----

/// Digest of the trace's *structure*: span identities, parents, kinds,
/// tasks, attempts, outcomes, and byte counts — everything except
/// timestamps, worker placement, and free-text detail. Two runs of the same
/// workflow at the same seed produce the same structural digest regardless
/// of thread count; that is the determinism contract `repro_trace` gates.
pub fn structural_digest(t: &Telemetry) -> u64 {
    let mut spans: Vec<&SpanEvent> = t.spans.iter().collect();
    spans.sort_by_key(|s| (s.id, s.attempt));
    let mut h = Fnv1a::new();
    h.update_u64(t.seed);
    for s in &spans {
        h.update_u64(s.id);
        h.update_u64(s.parent);
        h.update_str(&s.kind);
        h.update_str(&s.task);
        h.update_u64(u64::from(s.attempt));
        h.update_u64(u64::from(s.ok));
        h.update_u64(s.bytes);
    }
    let mut edges: Vec<&DepEdge> = t.edges.iter().collect();
    edges.sort_by_key(|e| (&e.from, &e.to));
    for e in edges {
        h.update_str(&e.from);
        h.update_str(&e.to);
    }
    h.finish()
}

/// One step of the critical path, with the task's self-time (the summed
/// duration of its executed attempts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    pub task: String,
    pub self_ms: f64,
}

/// The longest dependent chain of the executed DAG, weighted by per-task
/// self-time. Its length lower-bounds the wall clock of *any* schedule, so
/// `headroom = makespan − length` is the most a better schedule could save.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    pub steps: Vec<PathStep>,
    pub length_ms: f64,
    pub makespan_ms: f64,
}

impl CriticalPath {
    pub fn headroom_ms(&self) -> f64 {
        (self.makespan_ms - self.length_ms).max(0.0)
    }
}

/// Compute the critical path from a telemetry record: per-task self-time
/// from the `run` spans, longest-chain dynamic programming over the
/// persisted dependency edges. Deterministic, including tie-breaks.
pub fn critical_path(t: &Telemetry) -> CriticalPath {
    use std::collections::HashMap;

    // Intern every task name mentioned by a run span or an edge, in sorted
    // order so node indices are input-order-independent.
    let mut name_set: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for s in t.spans_of(KIND_RUN) {
        name_set.insert(&s.task);
    }
    for e in &t.edges {
        name_set.insert(&e.from);
        name_set.insert(&e.to);
    }
    let names: Vec<&str> = name_set.into_iter().collect();
    let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = names.len();

    // Self-time: Σ duration of the task's executed run spans (cached/resumed
    // markers are zero-length and contribute nothing).
    let mut self_ms: Vec<f64> = vec![0.0; n];
    for s in t.spans_of(KIND_RUN) {
        if let Some(&i) = index.get(s.task.as_str()) {
            self_ms[i] += s.duration_ms();
        }
    }
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &t.edges {
        if let (Some(&from), Some(&to)) = (index.get(e.from.as_str()), index.get(e.to.as_str())) {
            parents[to].push(from);
        }
    }

    // Longest path to each node, memoized over the acyclic edge set.
    let mut best: Vec<Option<f64>> = vec![None; n];
    let mut via: Vec<Option<usize>> = vec![None; n];
    fn solve(
        i: usize,
        parents: &[Vec<usize>],
        self_ms: &[f64],
        names: &[&str],
        best: &mut [Option<f64>],
        via: &mut [Option<usize>],
    ) -> f64 {
        if let Some(b) = best[i] {
            return b;
        }
        let mut chosen: Option<(f64, usize)> = None;
        for &p in &parents[i] {
            let b = solve(p, parents, self_ms, names, best, via);
            let better = match chosen {
                None => true,
                // Deterministic tie-break: larger length, then smaller name.
                Some((cb, cp)) => b > cb || (b == cb && names[p] < names[cp]),
            };
            if better {
                chosen = Some((b, p));
            }
        }
        let total = self_ms[i] + chosen.map_or(0.0, |(b, _)| b);
        best[i] = Some(total);
        via[i] = chosen.map(|(_, p)| p);
        total
    }
    let mut end: Option<usize> = None;
    for i in 0..n {
        let b = solve(i, &parents, &self_ms, &names, &mut best, &mut via);
        let better = match end {
            None => true,
            Some(e) => {
                let eb = best[e].unwrap_or(0.0);
                b > eb || (b == eb && names[i] < names[e])
            }
        };
        if better {
            end = Some(i);
        }
    }
    let mut steps = Vec::new();
    let mut cur = end;
    while let Some(i) = cur {
        steps.push(PathStep {
            task: names[i].to_owned(),
            self_ms: self_ms[i],
        });
        cur = via[i];
    }
    steps.reverse();
    let length_ms = steps.iter().map(|s| s.self_ms).sum();
    CriticalPath {
        steps,
        length_ms,
        makespan_ms: t.makespan_ms,
    }
}

// ---- Exports. ----

/// One Chrome trace-event ("X" complete event), Perfetto-loadable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    /// Microseconds since run start.
    pub ts: f64,
    pub dur: f64,
    pub pid: u32,
    pub tid: u32,
    pub args: ChromeArgs,
}

/// The `args` payload of one Chrome event: the deterministic span identity
/// plus outcome context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Span id in hex (Chrome renders strings more reliably than u64s).
    pub span: String,
    pub parent: String,
    pub task: String,
    pub attempt: u32,
    pub ok: bool,
    pub detail: String,
    pub bytes: u64,
}

/// Project the telemetry into Chrome trace events, sorted by timestamp
/// (monotone `ts`, as trace viewers expect).
pub fn chrome_events(t: &Telemetry) -> Vec<ChromeEvent> {
    let mut events: Vec<ChromeEvent> = t
        .spans
        .iter()
        .map(|s| ChromeEvent {
            name: if s.kind == KIND_RUN {
                s.task.clone()
            } else {
                format!("{} ({})", s.kind, s.task)
            },
            cat: s.kind.clone(),
            ph: "X".to_owned(),
            ts: s.start_ms * 1000.0,
            dur: s.duration_ms() * 1000.0,
            pid: 1,
            tid: s.worker,
            args: ChromeArgs {
                span: format!("{:016x}", s.id),
                parent: format!("{:016x}", s.parent),
                task: s.task.clone(),
                attempt: s.attempt,
                ok: s.ok,
                detail: s.detail.clone(),
                bytes: s.bytes,
            },
        })
        .collect();
    events.sort_by(|a, b| {
        a.ts.partial_cmp(&b.ts)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.args.span.cmp(&b.args.span))
    });
    events
}

/// The full Chrome trace-event JSON document (a bare event array, which
/// Perfetto and `chrome://tracing` both load).
pub fn to_chrome_json(t: &Telemetry) -> String {
    #[allow(clippy::expect_used)] // plain data types: serialization is infallible
    serde_json::to_string_pretty(&chrome_events(t)).expect("chrome trace serializes")
}

/// The `schedflow trace <run>` CLI summary: counters, histograms, and the
/// critical path with per-task self-times and headroom.
pub fn render_summary(t: &Telemetry) -> String {
    if !t.enabled {
        return "telemetry: tracing was disabled for this run (--no-trace)\n".to_owned();
    }
    let mut out = String::new();
    let c = &t.counters;
    out.push_str(&format!(
        "trace: {} span(s) over {} task(s), {} attempt(s) ({} retried), {} thread(s), seed {}\n",
        c.spans, c.tasks_executed, c.attempts, c.retries, t.threads, t.seed
    ));
    out.push_str(&format!(
        "engine: {} store write(s), {} fsync(s), {} checkpoint(s), {} par kernel(s), {} race event(s)\n",
        c.store_writes, c.store_fsyncs, c.checkpoints, c.par_kernels, c.race_events
    ));
    out.push_str("histograms:\n");
    for h in &t.histograms {
        out.push_str("  ");
        out.push_str(&h.render_line());
        out.push('\n');
    }
    let cp = critical_path(t);
    out.push_str(&format!(
        "critical path: {:.1} ms across {} task(s); wall clock {:.1} ms; headroom {:.1} ms\n",
        cp.length_ms,
        cp.steps.len(),
        t.makespan_ms,
        cp.headroom_ms()
    ));
    for s in &cp.steps {
        out.push_str(&format!("  {:>10.1} ms  {}\n", s.self_ms, s.task));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: &str, task: &str, attempt: u32, start: f64, end: f64, ok: bool) -> SpanEvent {
        SpanEvent {
            id: span_id(7, kind, task, attempt, 0),
            parent: 0,
            kind: kind.to_owned(),
            task: task.to_owned(),
            attempt,
            start_ms: start,
            end_ms: end,
            worker: 1,
            ok,
            detail: String::new(),
            bytes: 0,
        }
    }

    fn chain_telemetry() -> Telemetry {
        // a(10ms) -> b(20ms); c(5ms) independent. Makespan 40.
        Telemetry {
            enabled: true,
            seed: 7,
            threads: 2,
            makespan_ms: 40.0,
            spans: vec![
                span(KIND_RUN, "a", 1, 0.0, 10.0, true),
                span(KIND_RUN, "b", 1, 12.0, 32.0, true),
                span(KIND_RUN, "c", 1, 1.0, 6.0, true),
            ],
            counters: TraceCounters::default(),
            histograms: Vec::new(),
            edges: vec![DepEdge {
                from: "a".to_owned(),
                to: "b".to_owned(),
            }],
        }
    }

    #[test]
    fn span_ids_are_deterministic_and_coordinate_sensitive() {
        let a = span_id(1, KIND_RUN, "t", 1, 0);
        assert_eq!(a, span_id(1, KIND_RUN, "t", 1, 0));
        assert_ne!(a, span_id(2, KIND_RUN, "t", 1, 0), "seed-sensitive");
        assert_ne!(a, span_id(1, KIND_RUN, "t", 2, 0), "attempt-sensitive");
        assert_ne!(a, span_id(1, KIND_QUEUE, "t", 1, 0), "kind-sensitive");
        assert_ne!(a, span_id(1, KIND_RUN, "u", 1, 0), "task-sensitive");
        assert_ne!(a, span_id(1, KIND_RUN, "t", 1, 1), "ordinal-sensitive");
        assert_ne!(a, 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        let mut h = Histogram::new("x");
        for v in [0, 1, 2, 3, 900] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 906);
        assert_eq!(h.max, 900);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn critical_path_prefers_the_dependent_chain() {
        let t = chain_telemetry();
        let cp = critical_path(&t);
        let names: Vec<&str> = cp.steps.iter().map(|s| s.task.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!((cp.length_ms - 30.0).abs() < 1e-9);
        assert!((cp.headroom_ms() - 10.0).abs() < 1e-9);
        assert!(cp.length_ms <= t.makespan_ms);
    }

    #[test]
    fn structural_digest_ignores_timing_but_not_structure() {
        let t = chain_telemetry();
        let mut shifted = t.clone();
        for s in &mut shifted.spans {
            s.start_ms += 100.0;
            s.end_ms += 100.0;
            s.worker = 3;
            s.detail = "different".to_owned();
        }
        assert_eq!(structural_digest(&t), structural_digest(&shifted));
        let mut failed = t.clone();
        failed.spans[0].ok = false;
        assert_ne!(structural_digest(&t), structural_digest(&failed));
        let mut extra = t.clone();
        extra.spans.push(span(KIND_RUN, "d", 1, 0.0, 1.0, true));
        assert_ne!(structural_digest(&t), structural_digest(&extra));
    }

    #[test]
    fn sum_of_task_times_covers_queue_and_retries() {
        let mut t = chain_telemetry();
        // Queue wait for b from 10.0 (parent done) to 12.0 (start).
        t.spans.push(span(KIND_QUEUE, "b", 0, 10.0, 12.0, true));
        // a: 10, b: 32-10=22 (queue included), c: 5 → 37.
        assert!((t.sum_of_task_times_ms() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_events_are_monotone_and_complete() {
        let t = chain_telemetry();
        let events = chrome_events(&t);
        assert_eq!(events.len(), t.spans.len());
        for w in events.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        assert!(events.iter().all(|e| e.ph == "X" && e.dur >= 0.0));
        let json = to_chrome_json(&t);
        assert!(json.trim_start().starts_with('['));
    }

    #[test]
    fn notes_require_an_open_attempt() {
        // No attempt open: the note must be dropped, not panic.
        note_write(std::path::Path::new("/tmp/x"), 4, true, Duration::ZERO);
        begin_attempt(Instant::now());
        note_par("par_map", 9000, Duration::from_millis(2));
        note_race("r".to_owned());
        let notes = end_attempt();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].kind, KIND_PAR);
        assert_eq!(notes[0].bytes, 9000);
        assert!(notes[0].start_ms <= notes[0].end_ms);
        assert_eq!(notes[1].kind, KIND_RACE);
        assert!(!notes[1].ok);
        assert!(end_attempt().is_empty(), "stack is balanced");
    }

    #[test]
    fn disabled_builder_produces_default_telemetry() {
        let b = TraceBuilder::new(false, 9, 3, vec![]);
        let t = b.finish(&[], 5.0, 4);
        assert_eq!(t, Telemetry::default());
        assert!(!t.enabled);
        assert!(render_summary(&t).contains("disabled"));
    }

    #[test]
    fn summary_renders_counters_and_critical_path() {
        let mut t = chain_telemetry();
        t.counters.spans = 3;
        t.counters.tasks_executed = 3;
        t.histograms = vec![Histogram::new("task_latency_ms")];
        let s = render_summary(&t);
        assert!(s.contains("critical path: 30.0 ms"), "{s}");
        assert!(s.contains("headroom 10.0 ms"), "{s}");
        assert!(s.contains("task_latency_ms"), "{s}");
    }
}
