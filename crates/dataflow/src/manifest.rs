//! Checkpoint/resume: the run manifest.
//!
//! The executor persists a JSON manifest after every task resolution —
//! task fingerprints, terminal statuses, attempt counts, and file outputs —
//! so an interrupted or partially failed run can be rerun with
//! [`crate::RunOptions::resume`] and re-execute only the tasks that did not
//! succeed. Resume composes with (and sits above) the make-style freshness
//! cache: a task is resumed only when its fingerprint matches the previous
//! run, it succeeded there, and every one of its outputs is a file that
//! still exists. Tasks with in-memory value outputs cannot be restored from
//! disk and always re-execute.

use crate::graph::{StageKind, Workflow};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Manifest format version (bump on incompatible change).
pub const MANIFEST_VERSION: u32 = 1;

/// Terminal record of one task in a (possibly unfinished) run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ManifestEntry {
    pub name: String,
    /// Structural fingerprint: name, stage kind, and input/output artifact
    /// names. A changed fingerprint invalidates the entry on resume.
    pub fingerprint: u64,
    /// `"succeeded" | "failed" | "timed-out" | "stalled" | "skipped" |
    /// `"cached" | "resumed" | "pending"`.
    pub status: String,
    /// Executed attempts (0 when served from cache/resume or never run).
    pub attempts: u32,
    /// Declared file outputs (empty when any output is a value artifact —
    /// such tasks are never resumable).
    pub file_outputs: Vec<PathBuf>,
    /// True when every declared output is a file (the resumability
    /// precondition).
    pub outputs_all_files: bool,
}

/// The persisted state of one run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RunManifest {
    pub version: u32,
    pub tasks: Vec<ManifestEntry>,
}

impl RunManifest {
    /// Skeleton manifest for a workflow: every task `"pending"`.
    pub fn for_workflow(workflow: &Workflow) -> Self {
        let tasks = workflow
            .tasks
            .iter()
            .map(|spec| {
                let file_outputs: Vec<PathBuf> = spec
                    .outputs
                    .iter()
                    .filter_map(|id| workflow.file_path(*id).map(Path::to_path_buf))
                    .collect();
                ManifestEntry {
                    name: spec.name.clone(),
                    fingerprint: fingerprint(workflow, spec.name.as_str()),
                    status: "pending".to_owned(),
                    attempts: 0,
                    outputs_all_files: !spec.outputs.is_empty()
                        && file_outputs.len() == spec.outputs.len(),
                    file_outputs,
                }
            })
            .collect();
        RunManifest {
            version: MANIFEST_VERSION,
            tasks,
        }
    }

    /// Load a manifest, tolerating absence and corruption (both mean "no
    /// usable checkpoint": a truncated manifest must not be trusted). A
    /// checksum-invalid manifest is quarantined to `<name>.corrupt` before
    /// being ignored, so the damaged evidence survives for inspection.
    pub fn load(path: &Path) -> Option<RunManifest> {
        let payload = crate::store::DurableStore::real()
            .read_verified(path)
            .ok()?
            .into_bytes();
        let text = String::from_utf8(payload).ok()?;
        let manifest: RunManifest = serde_json::from_str(&text).ok()?;
        (manifest.version == MANIFEST_VERSION).then_some(manifest)
    }

    /// Persist through the durable store's atomic protocol (temp file →
    /// fsync → rename → parent-dir fsync, checksum footer) so an interrupted
    /// checkpoint never leaves a half-written manifest a later resume trusts.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let text =
            serde_json::to_string_pretty(self).map_err(|e| std::io::Error::other(e.to_string()))?;
        crate::store::DurableStore::real().write_atomic(path, text.as_bytes())
    }

    /// Look up the entry for a task by name.
    pub fn by_name(&self, name: &str) -> Option<&ManifestEntry> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Tasks that finished successfully (succeeded / cached / resumed).
    pub fn succeeded(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.status.as_str(), "succeeded" | "cached" | "resumed"))
            .count()
    }
}

impl ManifestEntry {
    /// Is this entry a valid resume source for a task with `fingerprint`?
    /// Requires a successful previous outcome, an unchanged fingerprint,
    /// file-only outputs, and every output file still on disk.
    pub fn resumable(&self, fingerprint: u64) -> bool {
        self.fingerprint == fingerprint
            && matches!(self.status.as_str(), "succeeded" | "cached" | "resumed")
            && self.outputs_all_files
            && self.file_outputs.iter().all(|p| p.exists())
    }
}

/// Structural fingerprint of a task: stable across runs, changed by renames,
/// re-kinding, re-wiring of inputs/outputs, or — when the task declares one
/// ([`Workflow::with_plan_fingerprint`]) — a change to the canonicalized
/// optimized logical plan its body executes. One streaming FNV-1a digest over
/// all of those fields ([`crate::fnv::Fnv1a`]); this replaces an earlier
/// ad-hoc multiply-add mix that had copied the FNV prime with a typo.
///
/// Panics if `task_name` is not declared in the workflow — callers pass names
/// read back from the same workflow, so this is an internal invariant.
#[allow(clippy::expect_used)]
pub fn fingerprint(workflow: &Workflow, task_name: &str) -> u64 {
    let spec = workflow
        .tasks
        .iter()
        .find(|t| t.name == task_name)
        .expect("fingerprint of a declared task");
    let mut h = crate::fnv::Fnv1a::new();
    h.update_str(&spec.name);
    h.update(&[match spec.kind {
        StageKind::Static => 1,
        StageKind::UserDefined => 2,
    }]);
    for id in spec.inputs.iter().chain(spec.outputs.iter()) {
        h.update_str(workflow.artifact_name(*id));
    }
    if let Some(plan) = spec.plan_fingerprint {
        h.update_u64(plan);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{StageKind, Workflow};

    fn workflow(dir: &Path) -> Workflow {
        let mut wf = Workflow::new();
        let v = wf.value::<u32>("v");
        let f = wf.file(dir.join("out.txt"));
        wf.task("mk-value", StageKind::Static, [], [v.id()], move |ctx| {
            ctx.put(v, 1)
        });
        let f2 = f.clone();
        wf.task("mk-file", StageKind::Static, [], [f.id()], move |ctx| {
            std::fs::write(ctx.path(&f2)?, "x").map_err(|e| e.to_string())
        });
        wf
    }

    fn tmp(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("schedflow-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn skeleton_tracks_resumability() {
        let dir = tmp("skel");
        let wf = workflow(&dir);
        let m = RunManifest::for_workflow(&wf);
        assert_eq!(m.tasks.len(), 2);
        assert!(!m.tasks[0].outputs_all_files, "value output not resumable");
        assert!(m.tasks[1].outputs_all_files);
        assert_eq!(m.tasks[1].file_outputs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp("roundtrip");
        let wf = workflow(&dir);
        let m = RunManifest::for_workflow(&wf);
        let path = dir.join("manifest.json");
        m.save(&path).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_ignored() {
        let dir = tmp("corrupt");
        let path = dir.join("manifest.json");
        std::fs::write(&path, "{\"version\": 1, \"tasks\": [{tru").unwrap();
        assert!(RunManifest::load(&path).is_none());
        assert!(RunManifest::load(&dir.join("absent.json")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_requires_success_and_files() {
        let dir = tmp("resume");
        let wf = workflow(&dir);
        let mut m = RunManifest::for_workflow(&wf);
        let fp = m.tasks[1].fingerprint;
        assert!(!m.tasks[1].resumable(fp), "pending is not resumable");
        m.tasks[1].status = "succeeded".to_owned();
        assert!(!m.tasks[1].resumable(fp), "output file missing");
        std::fs::write(dir.join("out.txt"), "x").unwrap();
        assert!(m.tasks[1].resumable(fp));
        assert!(!m.tasks[1].resumable(fp ^ 1), "fingerprint mismatch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_fingerprint_composes_into_task_fingerprint() {
        let dir = tmp("planfp");
        let mut wf = workflow(&dir);
        let a = fingerprint(&wf, "mk-value");
        let id = wf.task_id("mk-value").unwrap();
        wf.with_plan_fingerprint(id, 0xdead_beef);
        let b = fingerprint(&wf, "mk-value");
        assert_ne!(a, b, "a declared plan must invalidate the fingerprint");
        wf.with_plan_fingerprint(id, 0xdead_beef);
        assert_eq!(b, fingerprint(&wf, "mk-value"), "same plan, same print");
        wf.with_plan_fingerprint(id, 0xdead_beee);
        assert_ne!(b, fingerprint(&wf, "mk-value"), "changed plan changes it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_changes_with_structure() {
        let dir = tmp("fp");
        let wf = workflow(&dir);
        let a = fingerprint(&wf, "mk-value");
        let b = fingerprint(&wf, "mk-file");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint(&wf, "mk-value"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
