//! Dynamic race detection: a vector-clock happens-before tracker.
//!
//! The static effect analysis in `schedflow-lint` (`effect_flow`, the SF05xx
//! family) proves the *declared* read/write sets free of unordered conflicts.
//! This module cross-checks the same property at runtime against the accesses
//! tasks *actually perform* through [`crate::TaskCtx`] — catching aliased
//! file paths the linter was never shown, bodies that touch artifacts outside
//! their declaration, and engine bugs in the dependency bookkeeping itself.
//!
//! The design is the classic vector-clock happens-before relation:
//!
//! * every task gets a clock `C_t: Vec<u32>` assigned at dispatch — the
//!   element-wise max over its dependencies' clocks, then its own component
//!   incremented;
//! * task `a` *happens before* task `b` iff `C_b[a] >= C_a[a]` (b's clock
//!   has absorbed a's increment through some dependency path);
//! * two accesses to the same artifact conflict when they come from
//!   different tasks, at least one is a write, and neither task happens
//!   before the other.
//!
//! File artifacts are keyed by *lexically normalized path*, not artifact id,
//! so two `Workflow::file` declarations aliasing one path (the SF0503
//! scenario) collide here too. Re-accesses by the same task are always
//! allowed — retried attempts legitimately rewrite their own outputs.
//!
//! A detected violation carries the task pair, the artifact, and both clock
//! states as a counterexample; the executor aborts the run (skipping every
//! task still waiting) and surfaces the traces in
//! [`crate::RunReport::race_violations`].

use crate::artifact::{ArtifactId, ArtifactKindMeta};
use crate::graph::Workflow;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::{Component, Path, PathBuf};

/// Lexical path normalization (resolves `.` and `..` without touching the
/// filesystem) so aliased spellings of one path share an access key.
fn normalize_path(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            Component::CurDir => {}
            Component::ParentDir => {
                if !out.pop() {
                    out.push(Component::ParentDir);
                }
            }
            other => out.push(other),
        }
    }
    out
}

/// What one access record is keyed by: value artifacts by id, file artifacts
/// by normalized path (so aliased declarations collide).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum AccessKey {
    Value(usize),
    File(PathBuf),
}

struct Access {
    task: usize,
    write: bool,
}

struct Inner {
    /// Per-task vector clock; all zeros until the task is dispatched.
    clocks: Vec<Vec<u32>>,
    accesses: HashMap<AccessKey, Vec<Access>>,
    violations: Vec<String>,
    /// Task pairs already reported per key (dedup: one counterexample per
    /// racing pair and artifact, not one per access).
    reported: HashSet<(usize, usize, AccessKey)>,
}

/// `a` happens before `b` iff `b`'s clock absorbed `a`'s own increment.
fn happens_before(clocks: &[Vec<u32>], a: usize, b: usize) -> bool {
    clocks[a][a] > 0 && clocks[b][a] >= clocks[a][a]
}

/// Records every artifact access during a run and checks each new access
/// against all prior accesses of the same artifact for happens-before
/// ordering. Shared between the executor's event loop (clock assignment)
/// and the pool workers (access recording).
pub struct RaceTracker {
    task_names: Vec<String>,
    /// Direct dependencies per task (the clock-join sources).
    deps: Vec<Vec<usize>>,
    /// Per-artifact display name and access key.
    artifacts: Vec<(String, AccessKey)>,
    inner: Mutex<Inner>,
}

impl RaceTracker {
    /// Build a tracker for one workflow: task names for messages, the
    /// dependency lists clocks are joined over, and per-artifact keys.
    pub fn for_workflow(wf: &Workflow) -> Self {
        let n = wf.tasks.len();
        let deps = wf
            .dependencies()
            .into_iter()
            .map(|ds| ds.into_iter().map(|t| t.index()).collect())
            .collect();
        let artifacts = wf
            .artifacts
            .iter()
            .enumerate()
            .map(|(i, meta)| {
                let key = match &meta.kind {
                    ArtifactKindMeta::File(p) => AccessKey::File(normalize_path(p)),
                    ArtifactKindMeta::Value => AccessKey::Value(i),
                };
                (meta.name.clone(), key)
            })
            .collect();
        Self {
            task_names: wf.tasks.iter().map(|t| t.name.clone()).collect(),
            deps,
            artifacts,
            inner: Mutex::new(Inner {
                clocks: vec![vec![0; n]; n],
                accesses: HashMap::new(),
                violations: Vec::new(),
                reported: HashSet::new(),
            }),
        }
    }

    /// Assign task `task`'s vector clock at dispatch: the element-wise max
    /// over its dependencies' clocks, with its own component incremented.
    /// Called from the executor's event-loop thread once per task, before
    /// any attempt of the task can run.
    pub fn task_dispatched(&self, task: usize) {
        let inner = &mut *self.inner.lock();
        let n = inner.clocks.len();
        let mut clock = vec![0u32; n];
        for &d in &self.deps[task] {
            for (c, dep) in clock.iter_mut().zip(&inner.clocks[d]) {
                *c = (*c).max(*dep);
            }
        }
        clock[task] += 1;
        inner.clocks[task] = clock;
    }

    /// Record one artifact access by a running task and check it against
    /// every prior access of the same artifact (same normalized file path or
    /// same value id) for happens-before ordering.
    pub fn record(&self, task: usize, artifact: ArtifactId, write: bool) {
        let (name, key) = &self.artifacts[artifact.index()];
        // Files are reported by normalized path (aliased declarations race
        // *because* they normalize to one path — show that path).
        let (what, display) = match key {
            AccessKey::File(p) => ("file", p.display().to_string()),
            AccessKey::Value(_) => ("value", name.clone()),
        };
        let inner = &mut *self.inner.lock();
        let mut conflicts: Vec<(usize, bool)> = Vec::new();
        if let Some(records) = inner.accesses.get(key) {
            for prior in records {
                if prior.task == task || !(prior.write || write) {
                    continue;
                }
                if happens_before(&inner.clocks, prior.task, task)
                    || happens_before(&inner.clocks, task, prior.task)
                {
                    continue;
                }
                conflicts.push((prior.task, prior.write));
            }
        }
        for (other, other_write) in conflicts {
            let pair = (task.min(other), task.max(other), key.clone());
            if !inner.reported.insert(pair) {
                continue;
            }
            let desc = match (other_write, write) {
                (true, true) => "both write it",
                _ => "one reads while the other writes",
            };
            inner.violations.push(format!(
                "data race on {what} `{display}`: tasks `{}` (clock {:?}) and `{}` (clock {:?}) \
                 {desc} with no happens-before path between them",
                self.task_names[other],
                inner.clocks[other],
                self.task_names[task],
                inner.clocks[task],
            ));
            // Surface the violation on the detecting attempt's trace buffer
            // (instant span; `record` runs on the accessing worker thread).
            crate::trace::note_race(format!(
                "data race on {what} `{display}` between `{}` and `{}`",
                self.task_names[other], self.task_names[task],
            ));
        }
        inner
            .accesses
            .entry(key.clone())
            .or_default()
            .push(Access { task, write });
    }

    /// Whether any violation has been detected so far.
    pub fn has_violations(&self) -> bool {
        !self.inner.lock().violations.is_empty()
    }

    /// Counterexample traces collected so far (task pair, artifact, clock
    /// states), in detection order.
    pub fn violations(&self) -> Vec<String> {
        self.inner.lock().violations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageKind;

    /// Two tasks each writing their own `FileArtifact` that alias one path —
    /// passes `validate` (distinct ids) but races at runtime.
    fn aliased_writers(ordered: bool) -> Workflow {
        let mut wf = Workflow::new();
        let f1 = wf.file("/tmp/race/out.txt");
        let f2 = wf.file("/tmp/race/../race/out.txt");
        let link = wf.value::<u32>("link");
        if ordered {
            wf.task("first", StageKind::Static, [], [f1.id(), link.id()], |_| {
                Ok(())
            });
            wf.task("second", StageKind::Static, [link.id()], [f2.id()], |_| {
                Ok(())
            });
        } else {
            wf.task("first", StageKind::Static, [], [f1.id()], |_| Ok(()));
            wf.task("second", StageKind::Static, [], [f2.id()], |_| Ok(()));
            wf.task("bystander", StageKind::Static, [], [link.id()], |_| Ok(()));
        }
        wf
    }

    #[test]
    fn unordered_aliased_writes_are_detected_with_clocks() {
        let wf = aliased_writers(false);
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.task_dispatched(1);
        t.record(0, ArtifactId(0), true);
        assert!(!t.has_violations(), "single write is not a race");
        t.record(1, ArtifactId(1), true);
        let v = t.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains("`first`") && v[0].contains("`second`"),
            "{}",
            v[0]
        );
        assert!(v[0].contains("/tmp/race/out.txt"), "{}", v[0]);
        assert!(v[0].contains("clock [1, 0, 0]"), "{}", v[0]);
        assert!(v[0].contains("both write"), "{}", v[0]);
    }

    #[test]
    fn dependency_ordered_writes_are_clean() {
        let wf = aliased_writers(true);
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.record(0, ArtifactId(0), true);
        t.task_dispatched(1);
        t.record(1, ArtifactId(1), true);
        assert!(t.violations().is_empty(), "{:?}", t.violations());
    }

    #[test]
    fn unordered_read_of_aliased_write_is_a_race() {
        let mut wf = Workflow::new();
        let f1 = wf.file("/tmp/race/a.txt");
        let f2 = wf.file("/tmp/race/./a.txt");
        wf.task("writer", StageKind::Static, [], [f1.id()], |_| Ok(()));
        wf.task("reader", StageKind::Static, [f2.id()], [], |_| Ok(()));
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.task_dispatched(1);
        t.record(1, ArtifactId(1), false);
        t.record(0, ArtifactId(0), true);
        let v = t.violations();
        assert_eq!(v.len(), 1);
        assert!(
            v[0].contains("one reads while the other writes"),
            "{}",
            v[0]
        );
    }

    #[test]
    fn concurrent_reads_are_clean() {
        let mut wf = Workflow::new();
        let f = wf.file("/tmp/race/shared.txt");
        wf.task("r1", StageKind::Static, [f.id()], [], |_| Ok(()));
        wf.task("r2", StageKind::Static, [f.id()], [], |_| Ok(()));
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.task_dispatched(1);
        t.record(0, ArtifactId(0), false);
        t.record(1, ArtifactId(0), false);
        assert!(t.violations().is_empty(), "{:?}", t.violations());
    }

    #[test]
    fn same_task_rewrites_are_clean() {
        // A retried attempt legitimately rewrites its own output; an
        // unrelated concurrent task is no reason to flag it.
        let mut wf = Workflow::new();
        let f = wf.file("/tmp/race/own.txt");
        let x = wf.value::<u32>("x");
        wf.task("writer", StageKind::Static, [], [f.id()], |_| Ok(()));
        wf.task("other", StageKind::Static, [], [x.id()], |_| Ok(()));
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.task_dispatched(1);
        t.record(0, ArtifactId(0), true);
        t.record(0, ArtifactId(0), true);
        t.record(1, ArtifactId(1), true);
        assert!(t.violations().is_empty(), "{:?}", t.violations());
    }

    #[test]
    fn racing_pair_is_reported_once_per_artifact() {
        let wf = aliased_writers(false);
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.task_dispatched(1);
        t.record(0, ArtifactId(0), true);
        t.record(1, ArtifactId(1), true);
        t.record(1, ArtifactId(1), true);
        t.record(0, ArtifactId(0), true);
        assert_eq!(t.violations().len(), 1);
    }

    #[test]
    fn clock_join_gives_transitive_ordering() {
        // a -> b -> c: a and c never share an artifact edge directly, but
        // c's clock must still absorb a's increment through b.
        let mut wf = Workflow::new();
        let x = wf.value::<u32>("x");
        let y = wf.value::<u32>("y");
        let fa = wf.file("/tmp/race/t.txt");
        let fc = wf.file("/tmp/race/t.txt");
        wf.task("a", StageKind::Static, [], [x.id(), fa.id()], |_| Ok(()));
        wf.task("b", StageKind::Static, [x.id()], [y.id()], |_| Ok(()));
        wf.task("c", StageKind::Static, [y.id()], [fc.id()], |_| Ok(()));
        let t = RaceTracker::for_workflow(&wf);
        t.task_dispatched(0);
        t.record(0, ArtifactId(2), true);
        t.task_dispatched(1);
        t.task_dispatched(2);
        t.record(2, ArtifactId(3), true);
        assert!(t.violations().is_empty(), "{:?}", t.violations());
    }
}
