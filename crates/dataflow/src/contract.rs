//! Typed artifact contracts: what a task requires of its inputs and what it
//! promises about its outputs.
//!
//! The paper builds its pipeline in Swift/T, whose compiler checks the
//! dataflow before launch; the Rust engine only validates graph *shape*
//! (cycles, single writer). Contracts close the gap for the dominant payload
//! type — tabular frames — by letting every stage declare the columns it
//! reads ([`FrameSchema`] requirements) and the columns it produces, renames,
//! or drops ([`SchemaEffect`]). `schedflow-lint` propagates these schemas
//! through the DAG by abstract interpretation and reports contract
//! violations *before any task runs*.
//!
//! Contracts are deliberately engine-agnostic: a [`ColType`] is not a frame
//! `DType` (the frame crate depends on this one, not vice versa) and an
//! artifact with no declared effect simply propagates as unknown — linting
//! is gradual, never blocking adoption.

use crate::artifact::ArtifactId;

/// Abstract column type, mirroring the frame engine's dtypes plus a wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    Int,
    Float,
    Str,
    Bool,
    /// Matches any *numeric* concrete type (int or float) — the requirement
    /// a plan-derived contract emits for columns consumed through numeric
    /// expressions, where either width evaluates identically.
    Num,
    /// Matches any concrete type (for stages that only test presence).
    Any,
}

impl ColType {
    /// Whether a column of concrete type `actual` satisfies this requirement.
    pub fn accepts(&self, actual: ColType) -> bool {
        match self {
            ColType::Any => true,
            ColType::Num => matches!(
                actual,
                ColType::Int | ColType::Float | ColType::Num | ColType::Any
            ),
            _ => actual == ColType::Any || *self == actual,
        }
    }
}

impl std::fmt::Display for ColType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ColType::Int => "int",
            ColType::Float => "float",
            ColType::Str => "str",
            ColType::Bool => "bool",
            ColType::Num => "num",
            ColType::Any => "any",
        })
    }
}

/// One column in a schema: name, abstract type, and whether nulls may occur.
///
/// In a *requirement*, `nullable: false` means the consumer cannot tolerate
/// nulls; in a *produced* schema, `nullable: true` means nulls may be
/// present.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub ty: ColType,
    pub nullable: bool,
}

impl ColumnSpec {
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        ColumnSpec {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// Mark the column as possibly containing nulls (produced schemas) or as
    /// null-tolerant (requirements).
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered set of [`ColumnSpec`]s — the contract-level view of a frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameSchema {
    columns: Vec<ColumnSpec>,
}

impl FrameSchema {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace, by name) a non-nullable column.
    pub fn with(self, name: impl Into<String>, ty: ColType) -> Self {
        self.with_spec(ColumnSpec::new(name, ty))
    }

    /// Add (or replace, by name) a nullable column.
    pub fn with_nullable(self, name: impl Into<String>, ty: ColType) -> Self {
        self.with_spec(ColumnSpec::new(name, ty).nullable())
    }

    pub fn with_spec(mut self, spec: ColumnSpec) -> Self {
        self.upsert(spec);
        self
    }

    /// Insert a column, replacing any existing column of the same name.
    pub fn upsert(&mut self, spec: ColumnSpec) {
        match self.columns.iter_mut().find(|c| c.name == spec.name) {
            Some(existing) => *existing = spec,
            None => self.columns.push(spec),
        }
    }

    pub fn get(&self, name: &str) -> Option<&ColumnSpec> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove a column by name; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.columns.len();
        self.columns.retain(|c| c.name != name);
        self.columns.len() != before
    }

    /// Rename a column; returns whether the source existed.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        match self.columns.iter_mut().find(|c| c.name == from) {
            Some(c) => {
                c.name = to.to_owned();
                true
            }
            None => false,
        }
    }

    pub fn columns(&self) -> &[ColumnSpec] {
        &self.columns
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Merge another schema's columns into this one (other wins on clashes).
    pub fn union(mut self, other: &FrameSchema) -> Self {
        for c in &other.columns {
            self.upsert(c.clone());
        }
        self
    }
}

/// What a task promises about one output artifact's schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaEffect {
    /// The output has exactly this schema, regardless of the inputs.
    Produces(FrameSchema),
    /// The output schema is the schema of the `from` input artifact with the
    /// listed edits applied: renames first, then drops, then additions.
    Derives {
        from: ArtifactId,
        adds: Vec<ColumnSpec>,
        drops: Vec<String>,
        renames: Vec<(String, String)>,
    },
    /// The task makes no promise; downstream propagation sees "unknown".
    Opaque,
}

impl SchemaEffect {
    /// The output carries the `from` input's schema unchanged.
    pub fn passthrough(from: ArtifactId) -> Self {
        SchemaEffect::Derives {
            from,
            adds: Vec::new(),
            drops: Vec::new(),
            renames: Vec::new(),
        }
    }
}

/// The declared dataflow contract of one task: per-input column requirements
/// and per-output schema effects. Artifacts not mentioned are unconstrained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskContract {
    /// `(input artifact, columns the task reads)`.
    pub requires: Vec<(ArtifactId, FrameSchema)>,
    /// `(output artifact, schema promise)`.
    pub effects: Vec<(ArtifactId, SchemaEffect)>,
}

impl TaskContract {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare the columns this task reads from one input artifact.
    pub fn require(mut self, input: ArtifactId, schema: FrameSchema) -> Self {
        self.requires.push((input, schema));
        self
    }

    /// Declare the schema promise for one output artifact.
    pub fn effect(mut self, output: ArtifactId, effect: SchemaEffect) -> Self {
        self.effects.push((output, effect));
        self
    }

    /// Shorthand: the output has exactly `schema`.
    pub fn produces(self, output: ArtifactId, schema: FrameSchema) -> Self {
        self.effect(output, SchemaEffect::Produces(schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coltype_accepts() {
        assert!(ColType::Any.accepts(ColType::Int));
        assert!(ColType::Int.accepts(ColType::Int));
        assert!(!ColType::Int.accepts(ColType::Float));
        assert!(ColType::Str.accepts(ColType::Any));
        assert!(ColType::Num.accepts(ColType::Int));
        assert!(ColType::Num.accepts(ColType::Float));
        assert!(!ColType::Num.accepts(ColType::Str));
        assert!(!ColType::Str.accepts(ColType::Num));
    }

    #[test]
    fn schema_builder_upserts() {
        let s = FrameSchema::new()
            .with("a", ColType::Int)
            .with_nullable("b", ColType::Float)
            .with("a", ColType::Str);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a").unwrap().ty, ColType::Str);
        assert!(s.get("b").unwrap().nullable);
    }

    #[test]
    fn schema_edits() {
        let mut s = FrameSchema::new()
            .with("x", ColType::Int)
            .with("y", ColType::Int);
        assert!(s.rename("x", "z"));
        assert!(!s.rename("x", "w"));
        assert!(s.remove("y"));
        assert!(!s.remove("y"));
        assert!(s.contains("z"));
    }

    #[test]
    fn union_overwrites() {
        let a = FrameSchema::new().with("k", ColType::Int);
        let b = FrameSchema::new()
            .with("k", ColType::Str)
            .with("v", ColType::Bool);
        let u = a.union(&b);
        assert_eq!(u.get("k").unwrap().ty, ColType::Str);
        assert_eq!(u.len(), 2);
    }
}
