//! Deterministic fault injection for workflow tasks.
//!
//! The paper's pipeline depends on exactly the kind of services that fail in
//! production — an accounting database, headless chart rendering, a hosted
//! LLM API — but the reproduction's substitutes are all reliable in-process
//! code. The chaos harness restores the missing failure modes on demand: it
//! wraps task bodies with seeded, per-attempt probabilities of transient
//! failure, panic, and added latency, so the retry/deadline machinery can be
//! exercised reproducibly from tests and from `schedflow chaos`.
//!
//! Determinism: every draw is a pure function of `(seed, task name,
//! attempt)`. The same seed replays the exact same fault schedule, and a
//! retried attempt rolls fresh dice — which is what makes "transient"
//! failures transient.

use crate::error::{splitmix64, unit_f64};
use crate::fnv::fnv1a_str as fnv1a;
use crate::graph::StageKind;

/// Which stage kinds faults are injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosScope {
    /// Every task.
    #[default]
    All,
    /// Only fixed data-analysis stages.
    Static,
    /// Only user-defined (AI) stages — the paper's least reliable layer.
    UserDefined,
}

impl ChaosScope {
    pub(crate) fn covers(&self, kind: StageKind) -> bool {
        match self {
            ChaosScope::All => true,
            ChaosScope::Static => kind == StageKind::Static,
            ChaosScope::UserDefined => kind == StageKind::UserDefined,
        }
    }
}

/// Seeded fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Probability an attempt fails with a transient error (before the body
    /// runs, so no partial outputs are produced).
    pub fail_p: f64,
    /// Probability an attempt panics.
    pub panic_p: f64,
    /// Probability an attempt is delayed before running.
    pub delay_p: f64,
    /// Injected delays are uniform in `[1, max_delay_ms]`.
    pub max_delay_ms: u64,
    /// Per-store-write probability of a torn write (partial bytes, then an
    /// error). Injected through the durable store's [`crate::store::Fs`]
    /// handle, so the atomic protocol confines the tear to the temp file.
    pub io_torn_p: f64,
    /// Per-store-write probability of `ENOSPC` (disk full).
    pub io_enospc_p: f64,
    /// Per-store-write probability of `EIO` (generic device error).
    pub io_eio_p: f64,
    /// Simulate process death (panic out of the run) at the n-th store write
    /// across the whole run. `None` disables the crash countdown.
    pub crash_after_writes: Option<u64>,
    pub scope: ChaosScope,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            fail_p: 0.0,
            panic_p: 0.0,
            delay_p: 0.0,
            max_delay_ms: 50,
            io_torn_p: 0.0,
            io_enospc_p: 0.0,
            io_eio_p: 0.0,
            crash_after_writes: None,
            scope: ChaosScope::All,
        }
    }
}

/// What the injector decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Injection {
    /// Sleep this long before the body runs (also applied before an injected
    /// failure, modelling a slow-then-failing backend).
    pub delay_ms: Option<u64>,
    pub outcome: Option<Fault>,
}

/// An injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Return [`crate::TaskError::Transient`] instead of running the body.
    TransientFailure,
    /// Panic instead of running the body (exercises the unwind path).
    Panic,
    /// A store write lands partially, then errors (torn write).
    IoTorn,
    /// A store write fails with `ENOSPC` (disk full).
    IoEnospc,
    /// A store write fails with `EIO` (device error).
    IoEio,
    /// Simulated process death at the n-th store write of the run.
    CrashAfterWrites(u64),
}

impl ChaosConfig {
    /// Fail transiently with probability `p` (the common harness setup).
    pub fn failing(seed: u64, p: f64) -> Self {
        ChaosConfig {
            seed,
            fail_p: p,
            ..ChaosConfig::default()
        }
    }

    /// The per-`(task, attempt)` PRNG base every draw streams from.
    fn base(&self, task_name: &str, attempt: u32) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(fnv1a(task_name))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// True when any per-write I/O fault probability is set.
    pub fn has_io_faults(&self) -> bool {
        self.io_torn_p > 0.0 || self.io_enospc_p > 0.0 || self.io_eio_p > 0.0
    }

    /// Decide the I/O fault (if any) for the `write_ordinal`-th store write
    /// of one task attempt. Pure in `(seed, task, attempt, ordinal)`, and on
    /// streams disjoint from [`ChaosConfig::injection`]'s, so enabling I/O
    /// chaos never perturbs the attempt-level fault schedule.
    pub fn io_fault(&self, task_name: &str, attempt: u32, write_ordinal: u64) -> Option<Fault> {
        if !self.has_io_faults() {
            return None;
        }
        let base = self.base(task_name, attempt);
        let u = unit_f64(splitmix64(base.wrapping_add(4 + write_ordinal)));
        if u < self.io_torn_p {
            Some(Fault::IoTorn)
        } else if u < self.io_torn_p + self.io_enospc_p {
            Some(Fault::IoEnospc)
        } else if u < self.io_torn_p + self.io_enospc_p + self.io_eio_p {
            Some(Fault::IoEio)
        } else {
            None
        }
    }

    /// Decide the injection for one `(task, attempt)` pair. Pure: the same
    /// arguments always return the same decision.
    pub fn injection(&self, kind: StageKind, task_name: &str, attempt: u32) -> Injection {
        if !self.scope.covers(kind) {
            return Injection::default();
        }
        let base = self.base(task_name, attempt);
        let draw = |stream: u64| unit_f64(splitmix64(base.wrapping_add(stream)));

        let mut inj = Injection::default();
        if self.delay_p > 0.0 && draw(1) < self.delay_p {
            let span = self.max_delay_ms.max(1);
            inj.delay_ms = Some(1 + splitmix64(base.wrapping_add(2)) % span);
        }
        let u = draw(3);
        if u < self.panic_p {
            inj.outcome = Some(Fault::Panic);
        } else if u < self.panic_p + self.fail_p {
            inj.outcome = Some(Fault::TransientFailure);
        }
        inj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probabilities_inject_nothing() {
        let c = ChaosConfig::default();
        for a in 1..5 {
            assert_eq!(c.injection(StageKind::Static, "t", a), Injection::default());
        }
    }

    #[test]
    fn certain_failure_always_fails() {
        let c = ChaosConfig::failing(7, 1.0);
        for a in 1..5 {
            assert_eq!(
                c.injection(StageKind::Static, "t", a).outcome,
                Some(Fault::TransientFailure)
            );
        }
    }

    #[test]
    fn injections_are_deterministic_per_seed() {
        let c = ChaosConfig {
            seed: 99,
            fail_p: 0.4,
            panic_p: 0.1,
            delay_p: 0.5,
            max_delay_ms: 20,
            scope: ChaosScope::All,
            ..ChaosConfig::default()
        };
        for a in 1..10 {
            for name in ["obtain-2024-01", "merge-curated", "llm-insight-waits"] {
                assert_eq!(
                    c.injection(StageKind::Static, name, a),
                    c.injection(StageKind::Static, name, a)
                );
            }
        }
    }

    #[test]
    fn different_attempts_roll_fresh_dice() {
        let c = ChaosConfig::failing(3, 0.5);
        let outcomes: Vec<_> = (1..40)
            .map(|a| c.injection(StageKind::Static, "flaky", a).outcome)
            .collect();
        assert!(outcomes.iter().any(|o| o.is_some()), "some attempts fail");
        assert!(outcomes.iter().any(|o| o.is_none()), "some attempts pass");
    }

    #[test]
    fn scope_limits_injection_to_stage_kind() {
        let c = ChaosConfig {
            fail_p: 1.0,
            scope: ChaosScope::UserDefined,
            ..ChaosConfig::default()
        };
        assert_eq!(c.injection(StageKind::Static, "t", 1), Injection::default());
        assert_eq!(
            c.injection(StageKind::UserDefined, "t", 1).outcome,
            Some(Fault::TransientFailure)
        );
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let c = ChaosConfig::failing(11, 0.3);
        let n = 2000;
        let failures = (0..n)
            .filter(|i| {
                c.injection(StageKind::Static, &format!("task-{i}"), 1)
                    .outcome
                    .is_some()
            })
            .count();
        let rate = failures as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate} far from 0.3");
    }

    #[test]
    fn delays_stay_in_band() {
        let c = ChaosConfig {
            delay_p: 1.0,
            max_delay_ms: 10,
            ..ChaosConfig::default()
        };
        for a in 1..50 {
            let d = c.injection(StageKind::Static, "x", a).delay_ms.unwrap();
            assert!((1..=10).contains(&d));
        }
    }
}
