//! A work-stealing thread pool.
//!
//! This is the execution substrate for the workflow engine, standing in for
//! Swift/T's `-n N` physical concurrency: one OS thread per requested slot,
//! each with its own LIFO deque, stealing FIFO from peers and from a global
//! injector when idle (the classic Chase–Lev arrangement provided by
//! `crossbeam-deque`). Idle workers park on a condition variable instead of
//! spinning so an idle workflow costs nothing.

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Count of jobs submitted but not yet completed.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// Sleep/wake machinery for idle workers.
    sleep_lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    fn notify_one(&self) {
        let _guard = self.sleep_lock.lock();
        self.wake.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.sleep_lock.lock();
        self.wake.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Jobs are `'static` closures; completion is observed either through
/// [`ThreadPool::wait_idle`] or through channels owned by the caller (the
/// workflow executor does the latter).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Create a pool with `size` worker threads (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let workers: Vec<Worker<Job>> = (0..size).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
        });

        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("schedflow-worker-{index}"))
                    .spawn(move || worker_loop(index, worker, shared))
                    // Spawn fails only on resource exhaustion; nothing to
                    // degrade to at that point.
                    .unwrap_or_else(|e| panic!("spawn pool worker {index}: {e}"))
            })
            .collect();

        ThreadPool {
            shared,
            handles,
            size,
        }
    }

    /// Pool size as configured (the `-n N` of the workflow invocation).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a job for execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.injector.push(Box::new(job));
        self.shared.notify_one();
    }

    /// Block until every submitted job has completed.
    ///
    /// Only sound when no job submits further jobs after this is called from
    /// another thread; the workflow executor drives completion via channels
    /// instead and uses this only in tests and teardown.
    pub fn wait_idle(&self) {
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Signal shutdown and detach the worker threads without joining them.
    ///
    /// Used by the executor when a timed-out or stalled task body may never
    /// return: joining (as [`Drop`] does) would hang the caller forever.
    /// Each worker exits as soon as it finishes its current job; a genuinely
    /// hung body leaves its thread running detached.
    pub fn detach(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        self.handles.drain(..);
        // Drop now joins nothing (handles are gone).
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(index: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        match find_job(index, &local, &shared) {
            Some(job) => {
                job();
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Park until new work arrives. Re-check under the lock to
                // avoid missing a wake between the failed steal and the wait.
                let mut guard = shared.sleep_lock.lock();
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if shared.injector.is_empty() && local.is_empty() {
                    shared
                        .wake
                        .wait_for(&mut guard, std::time::Duration::from_millis(50));
                }
            }
        }
    }
}

/// Local pop, then injector steal, then round-robin peer steal.
fn find_job(index: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        let steal = shared.injector.steal_batch_and_pop(local);
        if steal.is_retry() {
            continue;
        }
        if let Some(job) = steal.success() {
            return Some(job);
        }
        break;
    }
    let n = shared.stealers.len();
    for offset in 1..n {
        let peer = (index + offset) % n;
        loop {
            let steal = shared.stealers[peer].steal();
            if steal.is_retry() {
                continue;
            }
            if let Some(job) = steal.success() {
                return Some(job);
            }
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_requested_size_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn jobs_can_spawn_jobs() {
        let pool = Arc::new(ThreadPool::new(4));
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            let p = Arc::clone(&pool);
            let tx = tx.clone();
            pool.execute(move || {
                for _ in 0..10 {
                    let c2 = Arc::clone(&c);
                    let tx2 = tx.clone();
                    p.execute(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                        let _ = tx2.send(());
                    });
                }
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(8);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn heavy_contention_completes() {
        let pool = ThreadPool::new(8);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..10_000u64 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                // Mix of trivial and slightly heavier jobs.
                if i % 97 == 0 {
                    std::thread::yield_now();
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }
}
