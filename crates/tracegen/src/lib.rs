//! # schedflow-tracegen
//!
//! Calibrated synthetic Slurm workload generation — the substitute for the
//! paper's gated OLCF trace archives.
//!
//! The pipeline is: sample users ([`users`], Zipf activity + behavioral
//! archetypes) and submissions ([`arrival`], nonhomogeneous Poisson;
//! [`requests`], sizes/runtimes/overestimation/outcomes/arrays/dependencies),
//! schedule them through `schedflow-sim` (waits and backfill flags *emerge*),
//! then assemble full sacct-shaped records ([`assemble`], [`steps`]).
//!
//! [`profile::WorkloadProfile`] carries the per-system calibration; the
//! `frontier`, `andes`, and `frontier_early` presets target the shapes of the
//! paper's Figures 1 and 3–9.

pub mod arrival;
pub mod assemble;
pub mod dist;
pub mod profile;
pub mod requests;
pub mod steps;
pub mod users;

pub use assemble::assemble_record;
pub use profile::{OutcomeWeights, SizeBucket, StepBucket, WorkloadProfile};
pub use requests::{synthesize_plans, JobPlan, BASE_JOB_ID};
pub use users::{Archetype, UserModel, UserPopulation};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use schedflow_model::record::JobRecord;
use schedflow_sim::{SimMetrics, Simulator};

/// End-to-end generation: plans → simulation → records.
pub struct TraceGenerator {
    profile: WorkloadProfile,
    seed: u64,
}

impl TraceGenerator {
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generate the full trace in memory. For very large profiles prefer
    /// [`TraceGenerator::generate_each`], which streams records (job steps
    /// dominate memory at full paper scale).
    pub fn generate(&self) -> Vec<JobRecord> {
        let mut out = Vec::new();
        self.generate_each(|r| out.push(r));
        out
    }

    /// Generate the trace, invoking `sink` once per assembled record in
    /// submit order, and return aggregate scheduling metrics.
    pub fn generate_each(&self, mut sink: impl FnMut(JobRecord)) -> SimMetrics {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let population = UserPopulation::generate(&self.profile, &mut rng);
        let plans = synthesize_plans(&self.profile, &population, &mut rng);
        let requests: Vec<_> = plans.iter().map(|p| p.request.clone()).collect();
        let sim = Simulator::new(self.profile.system.clone());
        let outcomes = sim
            .run(&requests)
            .expect("synthesized requests are valid by construction");
        let metrics = schedflow_sim::metrics(&requests, &outcomes, self.profile.system.total_nodes);
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            sink(assemble_record(plan, outcome, &self.profile));
        }
        metrics
    }
}

/// Generate a multi-segment trace (e.g. Figure 1's 2021–2024 Frontier
/// history: the early acceptance era followed by production).
pub fn generate_segments(segments: &[WorkloadProfile], seed: u64) -> Vec<JobRecord> {
    let mut out = Vec::new();
    for (i, profile) in segments.iter().enumerate() {
        TraceGenerator::new(profile.clone(), seed.wrapping_add(i as u64 * 0x9e3779b9))
            .generate_each(|r| out.push(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_model::state::JobState;

    fn small() -> TraceGenerator {
        TraceGenerator::new(WorkloadProfile::andes().truncated_days(10).scaled(0.4), 7)
    }

    #[test]
    fn end_to_end_generation_produces_valid_trace() {
        let records = small().generate();
        assert!(records.len() > 1000, "{}", records.len());
        for r in &records {
            r.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        // Steps greatly outnumber jobs (Figure 1 shape).
        let steps: usize = records.iter().map(|r| r.step_count()).sum();
        assert!(
            steps as f64 / records.len() as f64 > 3.0,
            "steps/jobs = {}",
            steps as f64 / records.len() as f64
        );
    }

    #[test]
    fn state_mix_has_all_major_states() {
        let records = small().generate();
        let count = |s: JobState| records.iter().filter(|r| r.state == s).count();
        assert!(count(JobState::Completed) > records.len() / 2);
        assert!(count(JobState::Failed) > 0);
        assert!(count(JobState::Cancelled) > 0);
        assert!(count(JobState::Timeout) > 0);
    }

    #[test]
    fn overestimation_dominates() {
        let records = small().generate();
        let (mut over, mut total) = (0usize, 0usize);
        for r in &records {
            if r.state == JobState::Completed {
                if let Some(u) = r.walltime_utilization() {
                    total += 1;
                    if u < 1.0 {
                        over += 1;
                    }
                }
            }
        }
        assert!(total > 100);
        assert!(
            over as f64 / total as f64 > 0.9,
            "overestimation share {}",
            over as f64 / total as f64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
    }

    #[test]
    fn segments_concatenate() {
        let s1 = WorkloadProfile::andes().truncated_days(3).scaled(0.2);
        let mut s2 = WorkloadProfile::andes().truncated_days(6).scaled(0.2);
        s2.start = s1.end;
        let records = generate_segments(&[s1.clone(), s2], 3);
        assert!(!records.is_empty());
        let boundary = s1.end;
        assert!(records.iter().any(|r| r.submit < boundary));
        assert!(records.iter().any(|r| r.submit >= boundary));
    }

    #[test]
    fn metrics_reported_from_generation() {
        let m = small().generate_each(|_| {});
        assert!(m.jobs > 1000);
        assert!(
            m.utilization > 0.02 && m.utilization < 1.0,
            "{}",
            m.utilization
        );
        assert!(m.backfill_fraction >= 0.0);
    }
}
