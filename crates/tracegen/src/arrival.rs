//! Submission arrival process: nonhomogeneous Poisson with diurnal and
//! weekly cycles, sampled by thinning.
//!
//! HPC submission streams peak during working hours and sag on weekends; the
//! wait-time spikes in the paper's Figure 4 ride on exactly this modulation
//! (bursts meeting a loaded machine).

use rand::Rng;
use schedflow_model::time::{Timestamp, DAY, HOUR};

/// Instantaneous rate multiplier at `t` for the given modulation knobs.
///
/// Diurnal: sinusoid peaking at 14:00 local; weekly: weekend multiplier.
pub fn rate_multiplier(t: Timestamp, diurnal_amplitude: f64, weekend_factor: f64) -> f64 {
    let sec_of_day = t.seconds_of_day() as f64;
    let phase = (sec_of_day - 14.0 * HOUR as f64) / DAY as f64 * std::f64::consts::TAU;
    let diurnal = 1.0 + diurnal_amplitude * phase.cos();
    let weekly = if t.weekday() >= 5 {
        weekend_factor
    } else {
        1.0
    };
    (diurnal * weekly).max(0.0)
}

/// Sample arrival timestamps over `[start, end)` with mean `per_day` events
/// per day, modulated by [`rate_multiplier`]. Uses Lewis–Shedler thinning
/// against the envelope rate; output is sorted.
pub fn sample_arrivals(
    start: Timestamp,
    end: Timestamp,
    per_day: f64,
    diurnal_amplitude: f64,
    weekend_factor: f64,
    rng: &mut impl Rng,
) -> Vec<Timestamp> {
    assert!(end.0 > start.0, "empty window");
    assert!(per_day >= 0.0);
    if per_day == 0.0 {
        return Vec::new();
    }
    let base_rate = per_day / DAY as f64; // events per second
    let envelope = base_rate * (1.0 + diurnal_amplitude) * weekend_factor.max(1.0);
    let mut out = Vec::with_capacity((per_day * (end.0 - start.0) as f64 / DAY as f64) as usize);
    let mut t = start.0 as f64;
    loop {
        // Exponential gap under the envelope rate.
        let u: f64 = rng.gen::<f64>();
        if u <= 0.0 {
            continue;
        }
        t += -u.ln() / envelope;
        if t >= end.0 as f64 {
            break;
        }
        let ts = Timestamp(t as i64);
        let accept = base_rate * rate_multiplier(ts, diurnal_amplitude, weekend_factor) / envelope;
        if rng.gen::<f64>() < accept {
            out.push(ts);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn window() -> (Timestamp, Timestamp) {
        (
            Timestamp::from_ymd(2024, 3, 4),
            Timestamp::from_ymd(2024, 4, 1),
        )
    }

    #[test]
    fn volume_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (s, e) = window();
        let days = (e.0 - s.0) as f64 / DAY as f64;
        let arr = sample_arrivals(s, e, 500.0, 0.4, 0.6, &mut rng);
        let expected = 500.0 * days * weekly_mean_multiplier(0.6);
        let got = arr.len() as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.1,
            "got {got}, expected ~{expected}"
        );
    }

    fn weekly_mean_multiplier(weekend_factor: f64) -> f64 {
        (5.0 + 2.0 * weekend_factor) / 7.0
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (s, e) = window();
        let arr = sample_arrivals(s, e, 200.0, 0.5, 0.5, &mut rng);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|t| *t >= s && *t < e));
    }

    #[test]
    fn daytime_outpaces_nighttime() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (s, e) = window();
        let arr = sample_arrivals(s, e, 800.0, 0.6, 1.0, &mut rng);
        let day = arr
            .iter()
            .filter(|t| (10..18).contains(&(t.seconds_of_day() / HOUR)))
            .count();
        let night = arr
            .iter()
            .filter(|t| !(6..22).contains(&(t.seconds_of_day() / HOUR)))
            .count();
        assert!(day > night, "day {day} night {night}");
    }

    #[test]
    fn weekends_are_quieter() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (s, e) = window();
        let arr = sample_arrivals(s, e, 800.0, 0.0, 0.3, &mut rng);
        let weekend = arr.iter().filter(|t| t.weekday() >= 5).count() as f64;
        let weekday = arr.iter().filter(|t| t.weekday() < 5).count() as f64;
        // Per-day rates: weekend ≈ 0.3 × weekday.
        let ratio = (weekend / 2.0) / (weekday / 5.0);
        assert!((ratio - 0.3).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (s, e) = window();
        assert!(sample_arrivals(s, e, 0.0, 0.4, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn multiplier_is_nonnegative_and_periodic() {
        for h in 0..48 {
            let t = Timestamp(Timestamp::from_ymd(2024, 1, 1).0 + h * HOUR);
            let m = rate_multiplier(t, 0.9, 0.5);
            assert!(m >= 0.0);
        }
        let midday = Timestamp::from_civil(2024, 1, 3, 14, 0, 0);
        let midnight = Timestamp::from_civil(2024, 1, 3, 2, 0, 0);
        assert!(rate_multiplier(midday, 0.5, 1.0) > rate_multiplier(midnight, 0.5, 1.0));
    }
}
