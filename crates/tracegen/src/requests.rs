//! Plan synthesis: turning arrivals + users into concrete job submissions.
//!
//! A [`JobPlan`] is everything the generator decides about a job *before*
//! scheduling: the simulator consumes its embedded
//! [`schedflow_sim::JobRequest`]; the remaining fields (account, array
//! membership, step count, memory request, …) feed record assembly afterward.

use crate::dist;
use crate::profile::WorkloadProfile;
use crate::users::{Archetype, UserPopulation};
use rand::Rng;
use schedflow_model::time::Timestamp;
use schedflow_sim::{JobRequest, PlannedOutcome};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// First job id minted by the generator (Slurm ids on a mature system are
/// large; starting high keeps generated ids plausible).
pub const BASE_JOB_ID: u64 = 1_200_000;

/// One planned submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobPlan {
    pub request: JobRequest,
    pub name: String,
    pub account: String,
    pub archetype: Archetype,
    /// `Some((parent_id, task_index))` for array elements.
    pub array: Option<(u64, u32)>,
    /// Numbered `srun` steps to synthesize (batch/extern are added on top).
    pub n_steps: u32,
    pub tasks_per_node: u32,
    pub req_mem_mib_per_node: u64,
    pub work_dir: String,
    /// Per-job RNG seed for usage/step synthesis (keeps assembly
    /// deterministic and order-independent).
    pub seed: u64,
}

/// Synthesize all job plans for a profile. Deterministic under (profile, rng).
pub fn synthesize_plans(
    profile: &WorkloadProfile,
    population: &UserPopulation,
    rng: &mut impl Rng,
) -> Vec<JobPlan> {
    let arrivals = crate::arrival::sample_arrivals(
        profile.start,
        profile.end,
        profile.jobs_per_day,
        profile.diurnal_amplitude,
        profile.weekend_factor,
        rng,
    );
    let size_cat = dist::Categorical::new(
        &profile
            .size_buckets
            .iter()
            .map(|b| b.weight)
            .collect::<Vec<_>>(),
    );
    let step_cat = dist::Categorical::new(
        &profile
            .step_buckets
            .iter()
            .map(|b| b.weight)
            .collect::<Vec<_>>(),
    );

    let node_mem_mib: u64 = if profile.system.gpus_per_node > 0 {
        512 * 1024
    } else {
        256 * 1024
    };

    let mut plans: Vec<JobPlan> = Vec::with_capacity(arrivals.len() + arrivals.len() / 8);
    let mut next_id = BASE_JOB_ID;
    let mut last_job_of_user: HashMap<u32, u64> = HashMap::new();

    for submit in arrivals {
        let user = population.sample(rng).clone();

        // Partition choice.
        let debug_p = (profile.debug_fraction * user.archetype.debug_affinity()).clamp(0.0, 0.9);
        let use_debug = rng.gen::<f64>() < debug_p;
        let partition = if use_debug { "debug" } else { "batch" };
        let part = profile
            .system
            .partition(partition)
            .expect("profile partitions exist");

        // Array membership.
        let is_array =
            rng.gen::<f64>() < profile.array_fraction && user.archetype != Archetype::Interactive;

        // QOS routing for the urgent-computing pattern. Urgent is reserved
        // for single near real-time jobs (a 200-wide array under a
        // per-user-capped QOS would only queue against itself); standby
        // suits flexible throughput work including arrays.
        let qos_roll: f64 = rng.gen();
        let special_qos = if use_debug {
            None
        } else if qos_roll < profile.urgent_fraction && !is_array {
            Some("urgent")
        } else if qos_roll < profile.urgent_fraction + profile.standby_fraction {
            Some("standby")
        } else {
            None
        };
        let width = if is_array {
            dist::to_int_clamped(
                dist::lognormal(rng, profile.array_mean_width.ln(), 0.6),
                2,
                200,
            ) as u32
        } else {
            1
        };
        let parent_id = next_id;

        for k in 0..width {
            let id = next_id;
            next_id += 1;

            // Node count: bucket → log-uniform → archetype scale → limits.
            let b = profile.size_buckets[size_cat.sample(rng)];
            let log_lo = f64::from(b.min_nodes).ln();
            let log_hi = f64::from(b.max_nodes.max(b.min_nodes)).ln();
            let raw = (log_lo + rng.gen::<f64>() * (log_hi - log_lo)).exp();
            let nodes = dist::to_int_clamped(
                raw * user.archetype.size_scale(),
                1,
                i64::from(part.max_nodes),
            ) as u32;

            // Actual runtime.
            let median = profile.runtime_median_secs * user.archetype.runtime_scale();
            let mut actual = dist::to_int_clamped(
                dist::lognormal(rng, median.ln(), profile.runtime_sigma),
                30,
                part.max_walltime.as_secs() * 3,
            );

            // Outcome (failure-ish weights scaled by the user multiplier).
            let w = &profile.outcomes;
            let outcome_cat = dist::Categorical::new(&[
                w.completed,
                w.failed * user.failure_mult,
                w.cancelled_running * user.failure_mult.sqrt(),
                w.cancelled_pending,
                w.timeout * user.failure_mult.sqrt(),
                w.node_fail,
                w.out_of_memory * user.failure_mult.sqrt(),
            ]);
            let outcome_idx = outcome_cat.sample(rng);
            // Timeouts (index 4) are realized as Complete jobs whose request
            // undershoots their actual runtime; the simulator kills them at
            // the limit and records TIMEOUT.
            let planned_timeout = outcome_idx == 4;
            let outcome = match outcome_idx {
                0 | 4 => PlannedOutcome::Complete,
                1 => PlannedOutcome::Fail {
                    at: rng.gen::<f64>().max(0.02),
                    exit_code: [1u8, 2, 127, 134, 139][rng.gen_range(0..5)],
                },
                2 => PlannedOutcome::CancelRunning {
                    at: rng.gen::<f64>().max(0.02),
                },
                3 => PlannedOutcome::CancelPending {
                    patience_secs: user.cancel_patience_secs,
                },
                5 => PlannedOutcome::NodeFail {
                    at: rng.gen::<f64>().max(0.02),
                },
                _ => PlannedOutcome::OutOfMemory {
                    at: (0.3 + 0.7 * rng.gen::<f64>()).min(1.0),
                },
            };

            // Requested walltime: overestimation factor, rounded up to a
            // human-round granularity (15 min batch / 5 min debug) — the
            // striping visible in Figures 6/9.
            let factor = dist::lognormal(
                rng,
                (profile.overestimate_median * user.overestimate_scale).ln(),
                profile.overestimate_sigma,
            )
            .max(1.05);
            let granularity: i64 = if use_debug { 300 } else { 900 };
            let mut walltime = if planned_timeout {
                // User under-requested: the job will hit the limit.
                ((actual as f64) * (0.4 + 0.5 * rng.gen::<f64>())) as i64
            } else {
                (actual as f64 * factor) as i64
            };
            walltime = ((walltime + granularity - 1) / granularity) * granularity;
            walltime = walltime.clamp(granularity, part.max_walltime.as_secs());
            if !planned_timeout {
                // Keep non-timeout jobs inside their request.
                actual = actual.min(walltime.max(31) - 1).max(30);
            }

            // Dependency on the user's previous job.
            let dependency = if rng.gen::<f64>() < profile.dependency_fraction {
                last_job_of_user.get(&user.id).copied()
            } else {
                None
            };

            // Steps.
            let sb = profile.step_buckets[step_cat.sample(rng)];
            let n_steps = dist::to_int_clamped(
                f64::from(rng.gen_range(sb.min_steps..=sb.max_steps.max(sb.min_steps)))
                    * user.archetype.steps_scale(),
                1,
                3000,
            ) as u32;

            let submit_k = if k == 0 {
                submit
            } else {
                Timestamp(submit.0 + i64::from(k))
            };
            // Urgent jobs are the near real-time pattern: small and short.
            let (nodes, walltime, actual) = match special_qos {
                Some("urgent") => {
                    let n = nodes.min(32);
                    let a = actual.min(2 * 3600);
                    let w = walltime.clamp(granularity, 4 * 3600).max(granularity);
                    (n, w, a.min(w.max(31) - 1).max(30))
                }
                _ => (nodes, walltime, actual),
            };
            let request = JobRequest {
                id,
                user: user.id,
                submit: submit_k,
                nodes,
                walltime_secs: walltime,
                actual_secs: actual,
                partition: partition.to_owned(),
                qos: match special_qos {
                    Some(q) => q.to_owned(),
                    None => if use_debug { "debug" } else { "normal" }.to_owned(),
                },
                outcome,
                dependency,
            };
            last_job_of_user.insert(user.id, id);

            plans.push(JobPlan {
                request,
                name: job_name(user.archetype, rng),
                account: user.account.clone(),
                archetype: user.archetype,
                array: (width > 1).then_some((parent_id, k)),
                n_steps,
                tasks_per_node: match user.archetype {
                    Archetype::Simulation => 8,
                    Archetype::MachineLearning => profile.system.gpus_per_node.max(1),
                    Archetype::Interactive => 1,
                    Archetype::Analysis => 4,
                },
                req_mem_mib_per_node: node_mem_mib / [1u64, 2, 4][rng.gen_range(0..3)],
                work_dir: format!("/lustre/orion/{}/scratch/u{:04}", user.account, user.id),
                seed: rng.gen(),
            });
        }
    }
    plans
}

fn job_name(archetype: Archetype, rng: &mut impl Rng) -> String {
    let stems: &[&str] = match archetype {
        Archetype::Simulation => &["lammps", "gromacs", "cfd_run", "qmc", "climate"],
        Archetype::MachineLearning => &["train", "finetune", "hpo_sweep", "inference", "eval"],
        Archetype::Interactive => &["interactive", "debug", "test_run", "dev"],
        Archetype::Analysis => &["postproc", "analysis", "viz", "reduce"],
    };
    format!(
        "{}_{:03}",
        stems[rng.gen_range(0..stems.len())],
        rng.gen_range(0..1000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use schedflow_sim::Simulator;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile::andes().truncated_days(14).scaled(0.5)
    }

    fn plans() -> Vec<JobPlan> {
        let p = small_profile();
        let mut rng = SmallRng::seed_from_u64(11);
        let pop = UserPopulation::generate(&p, &mut rng);
        synthesize_plans(&p, &pop, &mut rng)
    }

    #[test]
    fn plans_have_unique_monotone_ids() {
        let plans = plans();
        assert!(
            plans.len() > 1000,
            "expected a real workload, got {}",
            plans.len()
        );
        for w in plans.windows(2) {
            assert!(w[0].request.id < w[1].request.id);
            assert!(
                w[0].request.submit <= w[1].request.submit
                    || w[0].array.is_some()
                    || w[1].array.is_some()
            );
        }
    }

    #[test]
    fn requests_validate_against_the_machine() {
        let p = small_profile();
        let plans = plans();
        let reqs: Vec<JobRequest> = plans.iter().map(|pl| pl.request.clone()).collect();
        Simulator::new(p.system.clone()).validate(&reqs).unwrap();
    }

    #[test]
    fn walltime_always_covers_or_times_out() {
        for pl in plans() {
            let r = &pl.request;
            assert!(r.walltime_secs > 0);
            if matches!(r.outcome, PlannedOutcome::Complete) && r.actual_secs > r.walltime_secs {
                // Will be a timeout — allowed by design.
            }
            assert!(r.actual_secs >= 30 || r.actual_secs >= 1);
        }
    }

    #[test]
    fn walltimes_are_round_numbers() {
        for pl in plans() {
            let g = if pl.request.partition == "debug" {
                300
            } else {
                900
            };
            assert_eq!(pl.request.walltime_secs % g, 0, "job {}", pl.request.id);
        }
    }

    #[test]
    fn arrays_share_parent_and_index_sequentially() {
        let plans = plans();
        let mut arrays: HashMap<u64, Vec<u32>> = HashMap::new();
        for pl in &plans {
            if let Some((parent, k)) = pl.array {
                arrays.entry(parent).or_default().push(k);
            }
        }
        assert!(!arrays.is_empty(), "profile should produce arrays");
        for (parent, mut ks) in arrays {
            ks.sort_unstable();
            assert_eq!(ks[0], 0, "array {parent} starts at task 0");
            assert!(ks.len() >= 2);
            for (i, k) in ks.iter().enumerate() {
                assert_eq!(*k as usize, i);
            }
        }
    }

    #[test]
    fn dependencies_reference_earlier_jobs() {
        let plans = plans();
        let ids: std::collections::HashSet<u64> = plans.iter().map(|p| p.request.id).collect();
        let mut n_dep = 0;
        for pl in &plans {
            if let Some(dep) = pl.request.dependency {
                n_dep += 1;
                assert!(ids.contains(&dep));
                assert!(dep < pl.request.id, "dependency precedes the job");
            }
        }
        assert!(n_dep > 0);
    }

    #[test]
    fn outcome_mix_is_plausible() {
        let plans = plans();
        let completed = plans
            .iter()
            .filter(|p| matches!(p.request.outcome, PlannedOutcome::Complete))
            .count() as f64;
        let share = completed / plans.len() as f64;
        assert!((0.55..0.95).contains(&share), "completed share {share}");
    }

    #[test]
    fn debug_jobs_use_debug_qos() {
        for pl in plans() {
            if pl.request.partition == "debug" {
                assert_eq!(pl.request.qos, "debug");
                assert!(pl.request.walltime_secs <= 2 * 3600);
            }
        }
    }

    #[test]
    fn urgent_computing_routes_qos() {
        let p = WorkloadProfile::frontier()
            .truncated_days(10)
            .scaled(0.05)
            .with_urgent_computing(0.05, 0.20);
        let mut rng = SmallRng::seed_from_u64(31);
        let pop = UserPopulation::generate(&p, &mut rng);
        let plans = synthesize_plans(&p, &pop, &mut rng);
        let urgent: Vec<_> = plans
            .iter()
            .filter(|pl| pl.request.qos == "urgent")
            .collect();
        let standby = plans
            .iter()
            .filter(|pl| pl.request.qos == "standby")
            .count();
        assert!(!urgent.is_empty(), "urgent jobs generated");
        assert!(standby > urgent.len(), "standby outnumbers urgent");
        for pl in &urgent {
            assert!(pl.request.nodes <= 32, "urgent jobs are small");
            assert!(
                pl.request.walltime_secs <= 4 * 3600,
                "urgent jobs are short"
            );
            assert_eq!(pl.request.partition, "batch");
        }
        // Validates against the machine (urgent/standby QOS exist on Frontier).
        let reqs: Vec<_> = plans.iter().map(|pl| pl.request.clone()).collect();
        schedflow_sim::Simulator::new(p.system.clone())
            .validate(&reqs)
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "lacks urgent/standby QOS")]
    fn urgent_computing_requires_qos_definitions() {
        // Andes' default profile defines neither urgent nor standby.
        let _ = WorkloadProfile::andes().with_urgent_computing(0.1, 0.1);
    }

    #[test]
    fn determinism_under_seed() {
        let p = small_profile();
        let make = || {
            let mut rng = SmallRng::seed_from_u64(99);
            let pop = UserPopulation::generate(&p, &mut rng);
            synthesize_plans(&p, &pop, &mut rng)
        };
        let a = make();
        let b = make();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.seed, y.seed);
        }
    }
}
