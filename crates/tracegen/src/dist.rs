//! Sampling primitives for the workload generator.
//!
//! Only the distributions the workload phenomenology needs: normal/lognormal
//! (runtimes, overestimation factors), exponential (inter-arrival gaps),
//! weighted discrete choice (users, archetypes, size buckets), and Zipf
//! weights (user activity skew). Implemented directly over `rand`'s uniform
//! source so the crate stays within the approved dependency set.

use rand::Rng;

/// Standard normal via Box–Muller (one value per call; simple and fast
/// enough for trace generation).
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Normal with mean `mu` and standard deviation `sigma`.
pub fn normal_ms(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    mu + sigma * normal(rng)
}

/// Log-normal: `exp(N(mu, sigma))`. `mu` is the log of the median.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal_ms(rng, mu, sigma).exp()
}

/// Exponential with the given rate (mean = 1/rate).
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > 0.0 {
            return -u.ln() / rate;
        }
    }
}

/// Pareto with scale `xm` and shape `alpha` (heavy-tailed sizes).
pub fn pareto(rng: &mut impl Rng, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0);
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > 0.0 {
            return xm / u.powf(1.0 / alpha);
        }
    }
}

/// Precomputed cumulative table for repeated weighted sampling.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        Categorical { cumulative }
    }

    /// Sample an index proportional to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x: f64 = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Zipf weights `1/k^alpha` for ranks 1..=n — the classic fit for per-user
/// HPC activity skew.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    (1..=n).map(|k| (k as f64).powf(-alpha)).collect()
}

/// Clamp + round a float sample to an integer range.
pub fn to_int_clamped(x: f64, lo: i64, hi: i64) -> i64 {
    if x.is_nan() {
        return lo;
    }
    (x.round() as i64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| lognormal(&mut r, 3.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[10_000];
        let expected = 3.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.1,
            "median {median} vs {expected}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn pareto_is_bounded_below() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let cat = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[cat.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn categorical_rejects_zero_mass() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_decreasing_and_skewed() {
        let w = zipf_weights(100, 1.2);
        assert_eq!(w.len(), 100);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        let total: f64 = w.iter().sum();
        // Top-10 users carry most of the mass at alpha=1.2.
        let top10: f64 = w[..10].iter().sum();
        assert!(top10 / total > 0.5);
    }

    #[test]
    fn clamped_rounding() {
        assert_eq!(to_int_clamped(2.6, 1, 10), 3);
        assert_eq!(to_int_clamped(-5.0, 1, 10), 1);
        assert_eq!(to_int_clamped(99.0, 1, 10), 10);
        assert_eq!(to_int_clamped(f64::NAN, 1, 10), 1);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }
}
