//! The synthetic user population.
//!
//! Users differ in activity (Zipf-weighted), in what they run (archetype),
//! and in behavior: how badly they overestimate walltime, how often their
//! jobs fail, how quickly they cancel stuck submissions. The per-user failure
//! multiplier is the lever behind the paper's Figure 5 vs Figure 8 contrast
//! (Frontier: a few users dominate failures; Andes: uniform low rates).

use crate::dist;
use crate::profile::WorkloadProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of work a user predominantly submits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Large, long simulation campaigns.
    Simulation,
    /// AI training / hyperparameter sweeps: many short jobs, arrays, steps.
    MachineLearning,
    /// Interactive / debug / development activity.
    Interactive,
    /// Post-processing and data analysis.
    Analysis,
}

impl Archetype {
    pub const ALL: [Archetype; 4] = [
        Archetype::Simulation,
        Archetype::MachineLearning,
        Archetype::Interactive,
        Archetype::Analysis,
    ];

    /// Multiplier on sampled node counts.
    pub fn size_scale(&self) -> f64 {
        match self {
            Archetype::Simulation => 1.6,
            Archetype::MachineLearning => 0.7,
            Archetype::Interactive => 0.25,
            Archetype::Analysis => 0.5,
        }
    }

    /// Multiplier on sampled runtimes.
    pub fn runtime_scale(&self) -> f64 {
        match self {
            Archetype::Simulation => 1.8,
            Archetype::MachineLearning => 0.8,
            Archetype::Interactive => 0.15,
            Archetype::Analysis => 0.6,
        }
    }

    /// Multiplier on steps-per-job (ML ensembles launch many sruns).
    pub fn steps_scale(&self) -> f64 {
        match self {
            Archetype::Simulation => 1.0,
            Archetype::MachineLearning => 2.5,
            Archetype::Interactive => 0.4,
            Archetype::Analysis => 0.8,
        }
    }

    /// Probability the user targets the debug partition, relative to the
    /// profile's base debug fraction.
    pub fn debug_affinity(&self) -> f64 {
        match self {
            Archetype::Simulation => 0.3,
            Archetype::MachineLearning => 0.8,
            Archetype::Interactive => 4.0,
            Archetype::Analysis => 0.7,
        }
    }
}

/// One synthetic user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserModel {
    pub id: u32,
    /// Activity weight (Zipf rank weight).
    pub weight: f64,
    pub archetype: Archetype,
    /// Project account, shared by groups of users.
    pub account: String,
    /// Per-user multiplier on the overestimation factor median.
    pub overestimate_scale: f64,
    /// Per-user multiplier on failure-ish outcome weights.
    pub failure_mult: f64,
    /// Seconds of queue patience before a pending-cancel user gives up.
    pub cancel_patience_secs: i64,
}

/// The population plus a sampler over it.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    pub users: Vec<UserModel>,
    sampler: dist::Categorical,
}

impl UserPopulation {
    /// Generate a population per the profile's knobs.
    pub fn generate(profile: &WorkloadProfile, rng: &mut impl Rng) -> Self {
        let n = profile.n_users.max(1);
        let weights = dist::zipf_weights(n, profile.user_activity_alpha);
        // Archetype mix differs by machine flavor: GPU exascale machines skew
        // to simulation+ML; CPU clusters to analysis+interactive.
        let arch_weights = if profile.system.gpus_per_node > 0 {
            [0.38, 0.27, 0.15, 0.20]
        } else {
            [0.12, 0.13, 0.30, 0.45]
        };
        let arch_cat = dist::Categorical::new(&arch_weights);
        let n_accounts = (n / 6).max(1);
        let users = (0..n)
            .map(|i| {
                let archetype = Archetype::ALL[arch_cat.sample(rng)];
                UserModel {
                    id: i as u32,
                    weight: weights[i],
                    archetype,
                    account: format!("prj{:03}", rng.gen_range(0..n_accounts)),
                    overestimate_scale: dist::lognormal(rng, 0.0, 0.35),
                    failure_mult: dist::lognormal(rng, 0.0, profile.failure_skew_sigma),
                    cancel_patience_secs: dist::to_int_clamped(
                        dist::lognormal(rng, (6.0f64 * 3600.0).ln(), 1.0),
                        600,
                        14 * 86_400,
                    ),
                }
            })
            .collect::<Vec<_>>();
        let sampler = dist::Categorical::new(&weights);
        UserPopulation { users, sampler }
    }

    /// Sample a user index by activity weight.
    pub fn sample(&self, rng: &mut impl Rng) -> &UserModel {
        &self.users[self.sampler.sample(rng)]
    }

    pub fn len(&self) -> usize {
        self.users.len()
    }

    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn population_size_matches_profile() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = WorkloadProfile::frontier();
        let pop = UserPopulation::generate(&p, &mut rng);
        assert_eq!(pop.len(), p.n_users);
    }

    #[test]
    fn activity_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pop = UserPopulation::generate(&WorkloadProfile::frontier(), &mut rng);
        let mut counts = vec![0usize; pop.len()];
        for _ in 0..50_000 {
            counts[pop.sample(&mut rng).id as usize] += 1;
        }
        let top10: usize = {
            let mut c = counts.clone();
            c.sort_unstable_by(|a, b| b.cmp(a));
            c[..10].iter().sum()
        };
        // Zipf(1.05) over 1100 users: top-10 users carry a large share.
        assert!(
            top10 as f64 / 50_000.0 > 0.25,
            "top10 share {}",
            top10 as f64 / 50_000.0
        );
    }

    #[test]
    fn failure_skew_differs_between_systems() {
        let mut rng = SmallRng::seed_from_u64(3);
        let frontier = UserPopulation::generate(&WorkloadProfile::frontier(), &mut rng);
        let andes = UserPopulation::generate(&WorkloadProfile::andes(), &mut rng);
        let spread = |pop: &UserPopulation| {
            let mut mults: Vec<f64> = pop.users.iter().map(|u| u.failure_mult).collect();
            mults.sort_by(|a, b| a.partial_cmp(b).unwrap());
            mults[mults.len() * 95 / 100] / mults[mults.len() / 2]
        };
        assert!(
            spread(&frontier) > spread(&andes) * 1.5,
            "frontier {} andes {}",
            spread(&frontier),
            spread(&andes)
        );
    }

    #[test]
    fn archetype_mix_follows_machine_flavor() {
        let mut rng = SmallRng::seed_from_u64(4);
        let frontier = UserPopulation::generate(&WorkloadProfile::frontier(), &mut rng);
        let andes = UserPopulation::generate(&WorkloadProfile::andes(), &mut rng);
        let sim_share = |pop: &UserPopulation| {
            pop.users
                .iter()
                .filter(|u| u.archetype == Archetype::Simulation)
                .count() as f64
                / pop.len() as f64
        };
        assert!(sim_share(&frontier) > sim_share(&andes));
    }

    #[test]
    fn patience_is_bounded() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pop = UserPopulation::generate(&WorkloadProfile::andes(), &mut rng);
        for u in &pop.users {
            assert!(u.cancel_patience_secs >= 600);
            assert!(u.cancel_patience_secs <= 14 * 86_400);
        }
    }

    #[test]
    fn determinism() {
        let p = WorkloadProfile::andes();
        let a = UserPopulation::generate(&p, &mut SmallRng::seed_from_u64(9));
        let b = UserPopulation::generate(&p, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a.users.len(), b.users.len());
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.account, y.account);
            assert_eq!(x.failure_mult, y.failure_mult);
        }
    }
}
