//! Job-step synthesis: the `srun` launches inside each job.
//!
//! Figure 1's headline observation is that job-steps outnumber jobs by an
//! order of magnitude ("extensive use of task parallelism through srun").
//! Every started job gets a `batch` and an `extern` step spanning its whole
//! runtime, plus its planned numbered steps laid out sequentially over the
//! elapsed window with small launch gaps.

use crate::requests::JobPlan;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedflow_model::ids::{JobId, StepId, StepKind};
use schedflow_model::record::StepRecord;
use schedflow_model::state::{ExitCode, JobState};
use schedflow_model::time::{Elapsed, Timestamp};
use schedflow_model::tres::{Tres, TresKind};
use schedflow_sim::SimOutcome;

/// Synthesize the step records for one scheduled job. Deterministic per
/// `plan.seed`. Jobs that never started have no steps.
pub fn generate_steps(plan: &JobPlan, outcome: &SimOutcome, record_id: JobId) -> Vec<StepRecord> {
    let (start, end) = match (outcome.start, outcome.end) {
        (Some(s), Some(e)) => (s, e),
        _ => return Vec::new(),
    };
    let elapsed = (end - start).max(0);
    let mut rng = SmallRng::seed_from_u64(plan.seed);
    let nodes = plan.request.nodes;
    let ntasks = nodes * plan.tasks_per_node;
    let mem_bytes_cap = plan.req_mem_mib_per_node * 1024 * 1024;

    let mut steps = Vec::with_capacity(plan.n_steps as usize + 2);

    // Failure semantics: the job's terminal state lands on its last numbered
    // step (that's where the srun died); batch mirrors the job state.
    let job_failed = outcome.state != JobState::Completed && outcome.state != JobState::Timeout;

    let mk = |kind: StepKind,
              name: String,
              s: Timestamp,
              e: Timestamp,
              st_nodes: u32,
              st_tasks: u32,
              state: JobState,
              exit: ExitCode,
              rng: &mut SmallRng| {
        let step_elapsed = (e - s).max(0);
        let eff = 0.45 + 0.5 * rng.gen::<f64>();
        StepRecord {
            id: StepId {
                job: record_id,
                step: kind,
            },
            name,
            start: s,
            end: e,
            elapsed: Elapsed(step_elapsed),
            state,
            exit_code: exit,
            nnodes: st_nodes,
            ntasks: st_tasks,
            ave_cpu: Elapsed((step_elapsed as f64 * eff) as i64),
            max_rss_bytes: ((mem_bytes_cap as f64) * (0.05 + 0.6 * rng.gen::<f64>())) as u64,
            ave_disk_read: (rng.gen::<f64>() * 4e9) as u64,
            ave_disk_write: (rng.gen::<f64>() * 1e9) as u64,
            tres_usage_in_ave: Tres::new().with(TresKind::Cpu, u64::from(st_tasks)).with(
                TresKind::Mem,
                // MiB-aligned: sacct renders TRES memory in whole MiB, so
                // alignment keeps text round-trips lossless.
                (((mem_bytes_cap as f64) * (0.05 + 0.5 * rng.gen::<f64>())) as u64 / (1024 * 1024))
                    .max(1)
                    * 1024
                    * 1024,
            ),
        }
    };

    // batch + extern span the job.
    let job_state = outcome.state;
    let job_exit = ExitCode::new(outcome.exit_code, outcome.exit_signal);
    steps.push(mk(
        StepKind::Batch,
        "batch".to_owned(),
        start,
        end,
        1,
        1,
        job_state,
        job_exit,
        &mut rng,
    ));
    steps.push(mk(
        StepKind::Extern,
        "extern".to_owned(),
        start,
        end,
        nodes,
        nodes,
        JobState::Completed,
        ExitCode::SUCCESS,
        &mut rng,
    ));

    // Numbered steps: sequential segments with random (exponential) weights.
    let n = plan.n_steps.clamp(1, 3000);
    let mut weights: Vec<f64> = (0..n).map(|_| -rng.gen::<f64>().max(1e-12).ln()).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let mut cursor = 0i64;
    for (i, w) in weights.iter().enumerate() {
        let seg = ((elapsed as f64) * w) as i64;
        let s = Timestamp(start.0 + cursor);
        let e = Timestamp((start.0 + cursor + seg).min(end.0));
        cursor += seg;
        let last = i == n as usize - 1;
        let (state, exit) = if last && job_failed {
            (job_state, job_exit)
        } else if last && job_state == JobState::Timeout {
            (JobState::Cancelled, ExitCode::new(0, 15))
        } else {
            (JobState::Completed, ExitCode::SUCCESS)
        };
        steps.push(mk(
            StepKind::Numbered(i as u32),
            format!("{}.{i}", plan.name),
            s,
            e,
            nodes,
            ntasks,
            state,
            exit,
            &mut rng,
        ));
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::Archetype;
    use schedflow_sim::{JobRequest, PlannedOutcome};

    fn plan(n_steps: u32) -> JobPlan {
        JobPlan {
            request: JobRequest {
                id: 7,
                user: 1,
                submit: Timestamp::from_ymd(2024, 2, 1),
                nodes: 4,
                walltime_secs: 7200,
                actual_secs: 3600,
                partition: "batch".into(),
                qos: "normal".into(),
                outcome: PlannedOutcome::Complete,
                dependency: None,
            },
            name: "test_job".into(),
            account: "prj001".into(),
            archetype: Archetype::Analysis,
            array: None,
            n_steps,
            tasks_per_node: 4,
            req_mem_mib_per_node: 8192,
            work_dir: "/tmp".into(),
            seed: 1234,
        }
    }

    fn outcome(state: JobState) -> SimOutcome {
        let t = Timestamp::from_ymd(2024, 2, 1);
        SimOutcome {
            id: 7,
            eligible: t,
            start: Some(t + 60),
            end: Some(t + 60 + 3600),
            state,
            exit_code: if state == JobState::Failed { 1 } else { 0 },
            exit_signal: 0,
            backfilled: false,
            started_on_submit: false,
            priority: 1000,
            node_indices: vec![0, 1, 2, 3],
        }
    }

    #[test]
    fn batch_extern_plus_numbered() {
        let steps = generate_steps(&plan(5), &outcome(JobState::Completed), JobId::plain(7));
        assert_eq!(steps.len(), 7);
        assert!(matches!(steps[0].id.step, StepKind::Batch));
        assert!(matches!(steps[1].id.step, StepKind::Extern));
        for (i, s) in steps[2..].iter().enumerate() {
            assert_eq!(s.id.step, StepKind::Numbered(i as u32));
        }
    }

    #[test]
    fn steps_fit_inside_job_window() {
        let o = outcome(JobState::Completed);
        let steps = generate_steps(&plan(50), &o, JobId::plain(7));
        let (js, je) = (o.start.unwrap(), o.end.unwrap());
        for s in &steps {
            assert!(s.start >= js, "step starts at/after job start");
            assert!(s.end <= je, "step ends at/before job end");
            assert!(s.elapsed.0 >= 0);
        }
    }

    #[test]
    fn numbered_steps_are_sequential() {
        let steps = generate_steps(&plan(20), &outcome(JobState::Completed), JobId::plain(7));
        let numbered = &steps[2..];
        for w in numbered.windows(2) {
            assert!(w[0].end <= w[1].start || w[0].end.0 >= w[1].start.0 - 1);
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn failed_job_marks_last_step() {
        let steps = generate_steps(&plan(3), &outcome(JobState::Failed), JobId::plain(7));
        let last = steps.last().unwrap();
        assert_eq!(last.state, JobState::Failed);
        assert_eq!(last.exit_code.code, 1);
        assert_eq!(steps[2].state, JobState::Completed);
    }

    #[test]
    fn timeout_cancels_last_step() {
        let steps = generate_steps(&plan(2), &outcome(JobState::Timeout), JobId::plain(7));
        assert_eq!(steps.last().unwrap().state, JobState::Cancelled);
        assert_eq!(steps[0].state, JobState::Timeout, "batch mirrors the job");
    }

    #[test]
    fn never_started_job_has_no_steps() {
        let mut o = outcome(JobState::Cancelled);
        o.start = None;
        o.end = None;
        assert!(generate_steps(&plan(5), &o, JobId::plain(7)).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_steps(&plan(10), &outcome(JobState::Completed), JobId::plain(7));
        let b = generate_steps(&plan(10), &outcome(JobState::Completed), JobId::plain(7));
        assert_eq!(a, b);
    }

    #[test]
    fn memory_stays_under_request() {
        let p = plan(10);
        let cap = p.req_mem_mib_per_node * 1024 * 1024;
        for s in generate_steps(&p, &outcome(JobState::Completed), JobId::plain(7)) {
            assert!(s.max_rss_bytes <= cap);
        }
    }
}
