//! Workload profiles: the calibration knobs that make a synthetic trace look
//! like a given machine's accounting history.
//!
//! Two presets reproduce the paper's systems: [`WorkloadProfile::frontier`]
//! (exascale capability workload, Apr 2023–Dec 2024, ~0.5M jobs / ~7M steps)
//! and [`WorkloadProfile::andes`] (CPU throughput workload, 2024). A third,
//! [`WorkloadProfile::frontier_early`], models the 2021–Apr 2023 acceptance
//! test / hero-run era that Figure 1 includes but §2 excludes from analysis.

use schedflow_model::time::Timestamp;
use schedflow_sim::SystemConfig;
use serde::{Deserialize, Serialize};

/// Relative weights of planned job outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeWeights {
    pub completed: f64,
    pub failed: f64,
    pub cancelled_running: f64,
    pub cancelled_pending: f64,
    pub timeout: f64,
    pub node_fail: f64,
    pub out_of_memory: f64,
}

impl OutcomeWeights {
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.completed,
            self.failed,
            self.cancelled_running,
            self.cancelled_pending,
            self.timeout,
            self.node_fail,
            self.out_of_memory,
        ]
    }
}

/// A node-count bucket: jobs in the bucket draw log-uniformly from
/// `[min_nodes, max_nodes]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeBucket {
    pub min_nodes: u32,
    pub max_nodes: u32,
    pub weight: f64,
}

/// A steps-per-job bucket (numbered `srun` steps, excluding batch/extern).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepBucket {
    pub min_steps: u32,
    pub max_steps: u32,
    pub weight: f64,
}

/// Full calibration of one generated trace segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    pub system: SystemConfig,
    /// Trace window `[start, end)`.
    pub start: Timestamp,
    pub end: Timestamp,
    /// Mean submissions per day (before diurnal/weekly modulation).
    pub jobs_per_day: f64,
    /// Diurnal modulation amplitude in [0,1): rate swings ±amplitude around
    /// the mean with a working-hours peak.
    pub diurnal_amplitude: f64,
    /// Multiplier applied on Saturday/Sunday.
    pub weekend_factor: f64,
    /// Number of distinct users (paper: >1,000 on Frontier).
    pub n_users: usize,
    /// Zipf exponent of per-user activity (higher = more skew).
    pub user_activity_alpha: f64,
    /// Node-count mixture.
    pub size_buckets: Vec<SizeBucket>,
    /// Log-median of actual runtime, seconds.
    pub runtime_median_secs: f64,
    /// Log-sigma of actual runtime.
    pub runtime_sigma: f64,
    /// Median of the walltime overestimation factor (requested/actual); the
    /// paper's Figures 6/9 show pervasive overestimation, tighter on Andes.
    pub overestimate_median: f64,
    /// Log-sigma of the overestimation factor.
    pub overestimate_sigma: f64,
    pub outcomes: OutcomeWeights,
    /// Lognormal sigma of the per-user failure-rate multiplier: high on
    /// Frontier (a few users dominate failures, Fig. 5), low on Andes (Fig. 8).
    pub failure_skew_sigma: f64,
    /// Steps-per-job mixture (drives Figure 1's steps ≫ jobs).
    pub step_buckets: Vec<StepBucket>,
    /// Fraction of submissions that are job-array parents.
    pub array_fraction: f64,
    /// Mean array width for array submissions.
    pub array_mean_width: f64,
    /// Fraction of jobs submitted with a dependency on the user's previous job.
    pub dependency_fraction: f64,
    /// Fraction of jobs routed to the debug partition.
    pub debug_fraction: f64,
    /// Fraction of jobs submitted under the preempting `urgent` QOS
    /// (near real-time experiment analysis; 0 unless the system defines it).
    pub urgent_fraction: f64,
    /// Fraction of jobs submitted under the preemptible `standby` QOS
    /// (flexible low-priority work; 0 unless the system defines it).
    pub standby_fraction: f64,
    /// Average per-node power draw, watts (for ConsumedEnergy).
    pub node_power_watts: f64,
}

impl WorkloadProfile {
    /// Frontier production era (the paper's §2 dataset): Apr 2023–Dec 2024.
    pub fn frontier() -> Self {
        WorkloadProfile {
            system: SystemConfig::frontier(),
            start: Timestamp::from_ymd(2023, 4, 1),
            end: Timestamp::from_ymd(2025, 1, 1),
            jobs_per_day: 780.0,
            diurnal_amplitude: 0.45,
            weekend_factor: 0.55,
            n_users: 1100,
            user_activity_alpha: 1.05,
            size_buckets: vec![
                SizeBucket {
                    min_nodes: 1,
                    max_nodes: 1,
                    weight: 0.30,
                },
                SizeBucket {
                    min_nodes: 2,
                    max_nodes: 8,
                    weight: 0.36,
                },
                SizeBucket {
                    min_nodes: 9,
                    max_nodes: 64,
                    weight: 0.19,
                },
                SizeBucket {
                    min_nodes: 65,
                    max_nodes: 512,
                    weight: 0.11,
                },
                SizeBucket {
                    min_nodes: 513,
                    max_nodes: 2048,
                    weight: 0.025,
                },
                SizeBucket {
                    min_nodes: 2049,
                    max_nodes: 4608,
                    weight: 0.008,
                },
                SizeBucket {
                    min_nodes: 4609,
                    max_nodes: 9408,
                    weight: 0.002,
                },
            ],
            runtime_median_secs: 3000.0,
            runtime_sigma: 1.0,
            overestimate_median: 2.6,
            overestimate_sigma: 0.75,
            outcomes: OutcomeWeights {
                completed: 0.62,
                failed: 0.17,
                cancelled_running: 0.06,
                cancelled_pending: 0.05,
                timeout: 0.07,
                node_fail: 0.02,
                out_of_memory: 0.01,
            },
            failure_skew_sigma: 1.2,
            step_buckets: vec![
                StepBucket {
                    min_steps: 1,
                    max_steps: 2,
                    weight: 0.56,
                },
                StepBucket {
                    min_steps: 3,
                    max_steps: 20,
                    weight: 0.35,
                },
                StepBucket {
                    min_steps: 21,
                    max_steps: 100,
                    weight: 0.08,
                },
                StepBucket {
                    min_steps: 101,
                    max_steps: 600,
                    weight: 0.01,
                },
            ],
            array_fraction: 0.04,
            array_mean_width: 12.0,
            dependency_fraction: 0.06,
            debug_fraction: 0.08,
            urgent_fraction: 0.0,
            standby_fraction: 0.0,
            node_power_watts: 560.0,
        }
    }

    /// Andes (CPU analysis cluster), calendar year 2024 — §4.3's portability
    /// deployment: denser small/short jobs, tighter walltime estimates,
    /// lower and more uniform failure rates.
    pub fn andes() -> Self {
        WorkloadProfile {
            system: SystemConfig::andes(),
            start: Timestamp::from_ymd(2024, 1, 1),
            end: Timestamp::from_ymd(2025, 1, 1),
            jobs_per_day: 1200.0,
            diurnal_amplitude: 0.55,
            weekend_factor: 0.35,
            n_users: 420,
            user_activity_alpha: 0.85,
            size_buckets: vec![
                SizeBucket {
                    min_nodes: 1,
                    max_nodes: 1,
                    weight: 0.48,
                },
                SizeBucket {
                    min_nodes: 2,
                    max_nodes: 4,
                    weight: 0.33,
                },
                SizeBucket {
                    min_nodes: 5,
                    max_nodes: 16,
                    weight: 0.14,
                },
                SizeBucket {
                    min_nodes: 17,
                    max_nodes: 64,
                    weight: 0.04,
                },
                SizeBucket {
                    min_nodes: 65,
                    max_nodes: 256,
                    weight: 0.01,
                },
            ],
            runtime_median_secs: 2400.0,
            runtime_sigma: 0.9,
            overestimate_median: 1.8,
            overestimate_sigma: 0.45,
            outcomes: OutcomeWeights {
                completed: 0.78,
                failed: 0.09,
                cancelled_running: 0.04,
                cancelled_pending: 0.03,
                timeout: 0.045,
                node_fail: 0.01,
                out_of_memory: 0.005,
            },
            failure_skew_sigma: 0.4,
            step_buckets: vec![
                StepBucket {
                    min_steps: 1,
                    max_steps: 1,
                    weight: 0.62,
                },
                StepBucket {
                    min_steps: 2,
                    max_steps: 8,
                    weight: 0.30,
                },
                StepBucket {
                    min_steps: 9,
                    max_steps: 60,
                    weight: 0.08,
                },
            ],
            array_fraction: 0.07,
            array_mean_width: 20.0,
            dependency_fraction: 0.04,
            debug_fraction: 0.12,
            urgent_fraction: 0.0,
            standby_fraction: 0.0,
            node_power_watts: 350.0,
        }
    }

    /// Frontier acceptance/early-science era (Jan 2021–Mar 2023): far fewer
    /// submissions, skewed to huge short acceptance tests and hero runs.
    /// Included only in the Figure 1 full-history view.
    pub fn frontier_early() -> Self {
        let mut p = Self::frontier();
        p.start = Timestamp::from_ymd(2021, 1, 1);
        p.end = Timestamp::from_ymd(2023, 4, 1);
        p.jobs_per_day = 420.0;
        p.n_users = 220;
        p.size_buckets = vec![
            SizeBucket {
                min_nodes: 1,
                max_nodes: 8,
                weight: 0.40,
            },
            SizeBucket {
                min_nodes: 9,
                max_nodes: 512,
                weight: 0.30,
            },
            SizeBucket {
                min_nodes: 513,
                max_nodes: 4608,
                weight: 0.22,
            },
            SizeBucket {
                min_nodes: 4609,
                max_nodes: 9408,
                weight: 0.08,
            },
        ];
        p.outcomes = OutcomeWeights {
            completed: 0.48,
            failed: 0.26,
            cancelled_running: 0.08,
            cancelled_pending: 0.05,
            timeout: 0.07,
            node_fail: 0.05,
            out_of_memory: 0.01,
        };
        p
    }

    /// Scale submission volume (and user count) by `factor` while preserving
    /// the trace window — used to run benches and tests at reduced cost.
    /// Note this lowers machine load, shortening queues relative to the
    /// full-scale trace.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.jobs_per_day *= factor;
        self.n_users = ((self.n_users as f64 * factor.sqrt()).ceil() as usize).max(4);
        self
    }

    /// Enable the urgent-computing pattern: route fractions of the workload
    /// to the preempting `urgent` QOS and the preemptible `standby` QOS
    /// (requires the system profile to define both, as Frontier's does).
    pub fn with_urgent_computing(mut self, urgent: f64, standby: f64) -> Self {
        assert!(
            self.system.qos("urgent").is_some() && self.system.qos("standby").is_some(),
            "system profile lacks urgent/standby QOS"
        );
        self.urgent_fraction = urgent;
        self.standby_fraction = standby;
        self
    }

    /// Shrink the trace window to its first `days` days.
    pub fn truncated_days(mut self, days: i64) -> Self {
        let new_end = Timestamp(self.start.0 + days * 86_400);
        if new_end < self.end {
            self.end = new_end;
        }
        self
    }

    /// Expected number of submissions over the window.
    pub fn expected_jobs(&self) -> f64 {
        let days = (self.end.0 - self.start.0) as f64 / 86_400.0;
        self.jobs_per_day * days
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_targets_paper_scale() {
        let p = WorkloadProfile::frontier();
        // ~0.5M jobs over Apr 2023–Dec 2024 (§2 of the paper).
        let expected = p.expected_jobs();
        assert!((400_000.0..650_000.0).contains(&expected), "{expected}");
        assert!(p.n_users > 1000);
    }

    #[test]
    fn andes_contrasts_with_frontier() {
        let f = WorkloadProfile::frontier();
        let a = WorkloadProfile::andes();
        let f_max = f.size_buckets.iter().map(|b| b.max_nodes).max().unwrap();
        let a_max = a.size_buckets.iter().map(|b| b.max_nodes).max().unwrap();
        assert!(a_max < f_max, "Andes jobs are smaller");
        assert!(
            a.overestimate_median < f.overestimate_median,
            "Andes estimates tighter"
        );
        assert!(
            a.failure_skew_sigma < f.failure_skew_sigma,
            "Andes failures more uniform"
        );
        assert!(
            a.outcomes.completed > f.outcomes.completed,
            "Andes completes more"
        );
    }

    #[test]
    fn early_era_covers_figure1_prefix() {
        let e = WorkloadProfile::frontier_early();
        assert_eq!(e.start.civil().year, 2021);
        assert_eq!(e.end, WorkloadProfile::frontier().start);
        // Hero-run flavor: big-job buckets carry real mass.
        let big: f64 = e
            .size_buckets
            .iter()
            .filter(|b| b.min_nodes > 512)
            .map(|b| b.weight)
            .sum();
        assert!(big > 0.2);
    }

    #[test]
    fn scaling_preserves_window() {
        let p = WorkloadProfile::frontier().scaled(0.1);
        assert_eq!(p.start, WorkloadProfile::frontier().start);
        assert!(
            (p.expected_jobs() / WorkloadProfile::frontier().expected_jobs() - 0.1).abs() < 1e-9
        );
    }

    #[test]
    fn truncation_clamps() {
        let p = WorkloadProfile::andes().truncated_days(30);
        assert_eq!((p.end.0 - p.start.0) / 86_400, 30);
        let p2 = WorkloadProfile::andes().truncated_days(100_000);
        assert_eq!(p2.end, WorkloadProfile::andes().end);
    }

    #[test]
    fn size_bucket_weights_are_normalized_enough() {
        for p in [WorkloadProfile::frontier(), WorkloadProfile::andes()] {
            let total: f64 = p.size_buckets.iter().map(|b| b.weight).sum();
            assert!((total - 1.0).abs() < 0.01, "{total}");
            for b in &p.size_buckets {
                assert!(b.min_nodes <= b.max_nodes);
                assert!(b.max_nodes <= p.system.total_nodes);
            }
        }
    }
}
