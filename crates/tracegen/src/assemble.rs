//! Record assembly: plan + scheduling outcome → a full sacct-shaped
//! [`JobRecord`] with usage, energy, hostlist, flags and steps.

use crate::profile::WorkloadProfile;
use crate::requests::JobPlan;
use crate::steps::generate_steps;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedflow_model::flags::{Flag, JobFlags};
use schedflow_model::ids::{Account, JobId, UserId};
use schedflow_model::nodes::compress;
use schedflow_model::record::{JobRecord, Layout};
use schedflow_model::state::{ExitCode, PendingReason};
use schedflow_model::time::{Elapsed, TimeLimit, Timestamp};
use schedflow_model::tres::{Tres, TresKind};
use schedflow_model::units::MemSpec;
use schedflow_sim::SimOutcome;

/// Build the complete job record for one (plan, outcome) pair.
pub fn assemble_record(
    plan: &JobPlan,
    outcome: &SimOutcome,
    profile: &WorkloadProfile,
) -> JobRecord {
    // Usage RNG decorrelated from the step RNG (same seed, different stream).
    let mut rng = SmallRng::seed_from_u64(plan.seed ^ 0x9e37_79b9_7f4a_7c15);
    let sys = &profile.system;
    let req = &plan.request;

    let record_id = match plan.array {
        Some((parent, k)) => JobId::array(parent, k),
        None => JobId::plain(req.id),
    };

    let started = outcome.start.is_some();
    let start = outcome.start.unwrap_or(Timestamp::UNKNOWN);
    let end = outcome.end.unwrap_or(Timestamp::UNKNOWN);
    let elapsed = Elapsed(outcome.elapsed_secs().unwrap_or(0));

    let mut flags = JobFlags::EMPTY;
    if started {
        flags.insert(if outcome.backfilled {
            Flag::SchedBackfill
        } else {
            Flag::SchedMain
        });
        if outcome.started_on_submit {
            flags.insert(Flag::StartedOnSubmit);
        }
    }
    if req.dependency.is_some() {
        flags.insert(Flag::Dependent);
    }
    if req.qos == "standby" {
        flags.insert(Flag::Preemptible);
    }

    let ncpus = req.nodes * sys.cores_per_node;
    let ntasks = req.nodes * plan.tasks_per_node;
    let node_list = if outcome.node_indices.is_empty() {
        String::new()
    } else {
        // 1-based node names, as sites conventionally number hardware.
        let idx: Vec<u32> = outcome.node_indices.iter().map(|i| i + 1).collect();
        compress(&sys.name, &idx, sys.node_name_width)
    };

    // Usage models: CPU efficiency, memory footprint, energy, IO.
    let cpu_eff = 0.35 + 0.6 * rng.gen::<f64>();
    let total_cpu = Elapsed((elapsed.0 as f64 * f64::from(ncpus) * cpu_eff) as i64);
    let mem_cap_bytes = plan.req_mem_mib_per_node * 1024 * 1024;
    let max_rss = ((mem_cap_bytes as f64) * (0.1 + 0.75 * rng.gen::<f64>())) as u64;
    let gpu_load = if sys.gpus_per_node > 0 {
        0.6 + 0.4 * rng.gen::<f64>()
    } else {
        1.0
    };
    let energy_j =
        (f64::from(req.nodes) * elapsed.0 as f64 * profile.node_power_watts * gpu_load) as u64;

    let mut alloc_tres = Tres::new()
        .with(TresKind::Cpu, u64::from(ncpus))
        .with(TresKind::Mem, mem_cap_bytes * u64::from(req.nodes))
        .with(TresKind::Node, u64::from(req.nodes))
        .with(TresKind::Billing, u64::from(ncpus));
    if sys.gpus_per_node > 0 {
        alloc_tres.set(
            TresKind::Gres("gpu".to_owned()),
            u64::from(req.nodes * sys.gpus_per_node),
        );
    }

    let wait = outcome.wait_secs().unwrap_or(0);
    let reason = if !started {
        PendingReason::Priority
    } else if wait > 60 {
        if req.nodes > sys.total_nodes / 4 {
            PendingReason::Resources
        } else {
            PendingReason::Priority
        }
    } else if req.dependency.is_some() {
        PendingReason::Dependency
    } else {
        PendingReason::None
    };

    let steps = generate_steps(plan, outcome, record_id);

    JobRecord {
        id: record_id,
        name: plan.name.clone(),
        user: UserId(req.user),
        account: Account(plan.account.clone()),
        cluster: sys.name.clone(),
        partition: req.partition.clone(),
        qos: req.qos.clone(),
        reservation: None,
        reservation_id: None,
        submit: req.submit,
        eligible: outcome.eligible,
        start,
        end,
        elapsed,
        timelimit: TimeLimit::Limit(Elapsed(req.walltime_secs)),
        suspended: Elapsed::ZERO,
        nnodes: req.nodes,
        ncpus,
        ntasks,
        req_mem: MemSpec::per_node_mib(plan.req_mem_mib_per_node),
        req_gres: if sys.gpus_per_node > 0 {
            format!("gpu:{}", sys.gpus_per_node)
        } else {
            String::new()
        },
        layout: Layout::Block,
        alloc_tres,
        node_list,
        consumed_energy_j: energy_j,
        max_rss_bytes: max_rss,
        ave_vm_size_bytes: (max_rss as f64 * (1.1 + 0.4 * rng.gen::<f64>())) as u64,
        total_cpu,
        work_dir: plan.work_dir.clone(),
        ave_disk_read: (rng.gen::<f64>() * 8e9) as u64,
        ave_disk_write: (rng.gen::<f64>() * 2e9) as u64,
        max_disk_read: (rng.gen::<f64>() * 3e10) as u64,
        max_disk_write: (rng.gen::<f64>() * 8e9) as u64,
        state: outcome.state,
        exit_code: ExitCode::new(outcome.exit_code, outcome.exit_signal),
        reason,
        restarts: 0,
        constraints: String::new(),
        priority: outcome.priority,
        flags,
        dependency: req.dependency.map(JobId::plain),
        array_job_id: plan.array.map(|(parent, _)| parent),
        comment: String::new(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::UserPopulation;
    use schedflow_sim::Simulator;

    fn generate_small() -> (WorkloadProfile, Vec<JobPlan>, Vec<SimOutcome>) {
        // Dense enough that the simulator must queue and backfill.
        let profile = WorkloadProfile::andes().truncated_days(14).scaled(0.8);
        let mut rng = SmallRng::seed_from_u64(21);
        let pop = UserPopulation::generate(&profile, &mut rng);
        let plans = crate::requests::synthesize_plans(&profile, &pop, &mut rng);
        let reqs: Vec<_> = plans.iter().map(|p| p.request.clone()).collect();
        let outcomes = Simulator::new(profile.system.clone()).run(&reqs).unwrap();
        (profile, plans, outcomes)
    }

    #[test]
    fn records_validate() {
        let (profile, plans, outcomes) = generate_small();
        assert!(plans.len() > 500);
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            let rec = assemble_record(plan, outcome, &profile);
            rec.validate()
                .unwrap_or_else(|e| panic!("invalid record: {e}"));
        }
    }

    #[test]
    fn backfill_flags_and_hostlists_match_outcomes() {
        let (profile, plans, outcomes) = generate_small();
        let mut saw_backfill = false;
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            let rec = assemble_record(plan, outcome, &profile);
            assert_eq!(rec.is_backfilled(), outcome.backfilled);
            if outcome.backfilled {
                saw_backfill = true;
            }
            if outcome.start.is_some() {
                let n = schedflow_model::nodes::count(&rec.node_list).unwrap();
                assert_eq!(n, u64::from(rec.nnodes));
            } else {
                assert!(rec.node_list.is_empty());
                assert!(rec.steps.is_empty());
            }
        }
        assert!(saw_backfill, "a loaded machine should backfill something");
    }

    #[test]
    fn array_elements_carry_parent() {
        let (profile, plans, outcomes) = generate_small();
        let mut saw = false;
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            if let Some((parent, k)) = plan.array {
                saw = true;
                let rec = assemble_record(plan, outcome, &profile);
                assert_eq!(rec.array_job_id, Some(parent));
                assert_eq!(rec.id, JobId::array(parent, k));
            }
        }
        assert!(saw);
    }

    #[test]
    fn cpu_time_bounded_by_capacity() {
        let (profile, plans, outcomes) = generate_small();
        for (plan, outcome) in plans.iter().zip(&outcomes).take(500) {
            let rec = assemble_record(plan, outcome, &profile);
            assert!(rec.total_cpu.0 <= rec.elapsed.0 * i64::from(rec.ncpus));
        }
    }

    #[test]
    fn assembly_is_deterministic() {
        let (profile, plans, outcomes) = generate_small();
        let a = assemble_record(&plans[0], &outcomes[0], &profile);
        let b = assemble_record(&plans[0], &outcomes[0], &profile);
        assert_eq!(a, b);
    }
}
