//! Hash group-by with parallel partial aggregation.
//!
//! Each worker folds a contiguous row range into its own hash map of partial
//! accumulators (no shared state, no locks), and the per-worker maps are
//! merged at the end — the textbook two-phase parallel aggregation.

use crate::column::{Cell, Column, DType};
use crate::frame::{Frame, FrameError};
use schedflow_dataflow::par;
use std::collections::HashMap;

/// An aggregation over one column (or over the group itself for `Count`).
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Number of rows in the group.
    Count,
    /// Sum of a numeric column (nulls ignored).
    Sum(String),
    /// Mean of a numeric column (nulls ignored).
    Mean(String),
    Min(String),
    Max(String),
    /// Median of a numeric column (nulls ignored).
    Median(String),
    /// Interpolated quantile `q` in `[0,1]` of a numeric column.
    Quantile(String, f64),
}

impl Agg {
    fn source(&self) -> Option<&str> {
        match self {
            Agg::Count => None,
            Agg::Sum(c) | Agg::Mean(c) | Agg::Min(c) | Agg::Max(c) | Agg::Median(c) => Some(c),
            Agg::Quantile(c, _) => Some(c),
        }
    }

    fn needs_values(&self) -> bool {
        matches!(self, Agg::Median(_) | Agg::Quantile(_, _))
    }
}

#[derive(Clone, Default)]
struct Accum {
    count: u64,
    /// Per-agg scalar state: (n, sum, min, max).
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Collected values for order statistics.
    values: Vec<f64>,
}

impl Accum {
    fn new() -> Self {
        Accum {
            count: 0,
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    fn push(&mut self, v: Option<f64>, collect: bool) {
        self.count += 1;
        if let Some(v) = v {
            self.n += 1;
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            if collect {
                self.values.push(v);
            }
        }
    }

    fn merge(&mut self, other: Accum) {
        self.count += other.count;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.values.extend(other.values);
    }
}

type GroupMap = HashMap<Vec<u8>, (usize, Vec<Accum>)>;

/// Group `frame` by `keys` and compute `aggs`; output columns are named by
/// the paired strings. Groups appear in order of first occurrence.
pub fn group_by(
    frame: &Frame,
    keys: &[&str],
    aggs: &[(&str, Agg)],
) -> Result<Frame, FrameError> {
    // Validate early so errors carry column names rather than panics.
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| frame.column(k))
        .collect::<Result<_, _>>()?;
    for c in &key_cols {
        if c.dtype() == DType::Float {
            return Err(FrameError::TypeMismatch {
                column: "<group key>".to_owned(),
                expected: DType::Str,
                got: DType::Float,
            });
        }
    }
    let agg_cols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|(_, a)| a.source().map(|c| frame.column(c)).transpose())
        .collect::<Result<_, _>>()?;
    let collect_flags: Vec<bool> = aggs.iter().map(|(_, a)| a.needs_values()).collect();

    let height = frame.height();
    let encode_key = |row: usize| -> Vec<u8> {
        let mut key = Vec::with_capacity(keys.len() * 8);
        for c in &key_cols {
            match c.cell(row) {
                Cell::Null => key.push(0u8),
                Cell::Int(v) => {
                    key.push(1);
                    key.extend_from_slice(&v.to_le_bytes());
                }
                Cell::Bool(b) => {
                    key.push(2);
                    key.push(u8::from(b));
                }
                Cell::Str(s) => {
                    key.push(3);
                    key.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    key.extend_from_slice(s.as_bytes());
                }
                Cell::Float(_) => unreachable!("float keys rejected above"),
            }
        }
        key
    };

    // Phase 1: per-chunk partial maps.
    let ranges = par::split_ranges(height, par::threads());
    let fold_range = |range: std::ops::Range<usize>| -> GroupMap {
        let mut map: GroupMap = HashMap::new();
        for row in range {
            let key = encode_key(row);
            let entry = map
                .entry(key)
                .or_insert_with(|| (row, vec![Accum::new(); aggs.len()]));
            for (ai, acc) in entry.1.iter_mut().enumerate() {
                let v = agg_cols[ai].and_then(|c| c.get_f64(row));
                acc.push(v, collect_flags[ai]);
            }
        }
        map
    };

    let partials: Vec<GroupMap> = if height < par::PAR_THRESHOLD || ranges.len() <= 1 {
        vec![fold_range(0..height)]
    } else {
        std::thread::scope(|scope| {
            let joins: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let r = r.clone();
                    let fold_range = &fold_range;
                    scope.spawn(move || fold_range(r))
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("group-by worker panicked"))
                .collect()
        })
    };

    // Phase 2: merge.
    let mut merged: GroupMap = HashMap::new();
    for partial in partials {
        for (key, (first_row, accs)) in partial {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((first_row, accs));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let slot = e.get_mut();
                    slot.0 = slot.0.min(first_row);
                    for (dst, src) in slot.1.iter_mut().zip(accs) {
                        dst.merge(src);
                    }
                }
            }
        }
    }

    // Stable output order: first occurrence in the frame.
    let mut groups: Vec<(usize, Vec<Accum>)> = merged.into_values().collect();
    groups.sort_by_key(|(first, _)| *first);

    // Key columns from representative rows.
    let rep_rows: Vec<usize> = groups.iter().map(|(first, _)| *first).collect();
    let mut out = Frame::new();
    for (ki, k) in keys.iter().enumerate() {
        out.add_column(k, key_cols[ki].take(&rep_rows))?;
    }

    // Aggregate columns.
    for (ai, (name, agg)) in aggs.iter().enumerate() {
        let col = match agg {
            Agg::Count => Column::from_i64(
                groups.iter().map(|(_, a)| a[ai].count as i64).collect(),
            ),
            Agg::Sum(_) => Column::from_f64(groups.iter().map(|(_, a)| a[ai].sum).collect()),
            Agg::Mean(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, a)| {
                        let acc = &a[ai];
                        (acc.n > 0).then(|| acc.sum / acc.n as f64)
                    })
                    .collect(),
            ),
            Agg::Min(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, a)| (a[ai].n > 0).then_some(a[ai].min))
                    .collect(),
            ),
            Agg::Max(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, a)| (a[ai].n > 0).then_some(a[ai].max))
                    .collect(),
            ),
            Agg::Median(_) => quantile_column(&groups, ai, 0.5),
            Agg::Quantile(_, q) => quantile_column(&groups, ai, *q),
        };
        out.add_column(name, col)?;
    }
    Ok(out)
}

fn quantile_column(groups: &[(usize, Vec<Accum>)], ai: usize, q: f64) -> Column {
    Column::from_opt_f64(
        groups
            .iter()
            .map(|(_, a)| {
                let mut vals = a[ai].values.clone();
                if vals.is_empty() {
                    return None;
                }
                vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
                Some(crate::stats::quantile_sorted(&vals, q))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(
                    ["a", "b", "a", "c", "b", "a"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
            )
            .with("wait", Column::from_i64(vec![10, 20, 30, 40, 60, 50]))
    }

    #[test]
    fn count_per_group_in_first_occurrence_order() {
        let g = group_by(&sample(), &["user"], &[("n", Agg::Count)]).unwrap();
        assert_eq!(g.str("user").unwrap().str_values(), &["a", "b", "c"]);
        assert_eq!(g.i64("n").unwrap().i64_values(), &[3, 2, 1]);
    }

    #[test]
    fn sum_mean_min_max() {
        let g = group_by(
            &sample(),
            &["user"],
            &[
                ("sum", Agg::Sum("wait".into())),
                ("mean", Agg::Mean("wait".into())),
                ("min", Agg::Min("wait".into())),
                ("max", Agg::Max("wait".into())),
            ],
        )
        .unwrap();
        assert_eq!(g.f64("sum").unwrap().f64_values(), &[90.0, 80.0, 40.0]);
        assert_eq!(g.column("mean").unwrap().get_f64(0), Some(30.0));
        assert_eq!(g.column("min").unwrap().get_f64(1), Some(20.0));
        assert_eq!(g.column("max").unwrap().get_f64(0), Some(50.0));
    }

    #[test]
    fn median_and_quantile() {
        let g = group_by(
            &sample(),
            &["user"],
            &[
                ("med", Agg::Median("wait".into())),
                ("p75", Agg::Quantile("wait".into(), 0.75)),
            ],
        )
        .unwrap();
        assert_eq!(g.column("med").unwrap().get_f64(0), Some(30.0));
        // user a values {10,30,50}: p75 interpolates 30..50.
        let p75 = g.column("p75").unwrap().get_f64(0).unwrap();
        assert!((p75 - 40.0).abs() < 1e-9, "{p75}");
    }

    #[test]
    fn composite_keys() {
        let f = sample().with(
            "state",
            Column::from_str(
                ["ok", "ok", "bad", "ok", "ok", "bad"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
        );
        let g = group_by(&f, &["user", "state"], &[("n", Agg::Count)]).unwrap();
        assert_eq!(g.height(), 4); // (a,ok) (b,ok) (a,bad) (c,ok)
        assert_eq!(g.width(), 3);
    }

    #[test]
    fn nulls_ignored_in_aggregates_but_counted_in_count() {
        let f = Frame::new()
            .with("k", Column::from_str(vec!["x".into(), "x".into()]))
            .with("v", Column::from_opt_i64(vec![Some(4), None]));
        let g = group_by(
            &f,
            &["k"],
            &[("n", Agg::Count), ("mean", Agg::Mean("v".into()))],
        )
        .unwrap();
        assert_eq!(g.i64("n").unwrap().i64_values(), &[2]);
        assert_eq!(g.column("mean").unwrap().get_f64(0), Some(4.0));
    }

    #[test]
    fn all_null_group_has_null_mean() {
        let f = Frame::new()
            .with("k", Column::from_str(vec!["x".into()]))
            .with("v", Column::from_opt_i64(vec![None]));
        let g = group_by(&f, &["k"], &[("mean", Agg::Mean("v".into()))]).unwrap();
        assert_eq!(g.column("mean").unwrap().get_f64(0), None);
    }

    #[test]
    fn float_keys_rejected() {
        let f = Frame::new().with("k", Column::from_f64(vec![1.0]));
        assert!(group_by(&f, &["k"], &[("n", Agg::Count)]).is_err());
    }

    #[test]
    fn large_input_parallel_matches_sequential_semantics() {
        // Build a frame large enough to trigger the parallel path.
        let n = 50_000usize;
        let users: Vec<String> = (0..n).map(|i| format!("u{}", i % 37)).collect();
        let waits: Vec<i64> = (0..n as i64).collect();
        let f = Frame::new()
            .with("user", Column::from_str(users))
            .with("wait", Column::from_i64(waits));
        let g = group_by(
            &f,
            &["user"],
            &[("n", Agg::Count), ("sum", Agg::Sum("wait".into()))],
        )
        .unwrap();
        assert_eq!(g.height(), 37);
        let total: i64 = g.i64("n").unwrap().i64_values().iter().sum();
        assert_eq!(total as usize, n);
        let sum: f64 = g.f64("sum").unwrap().f64_values().iter().sum();
        assert_eq!(sum, (n as f64 - 1.0) * n as f64 / 2.0);
    }
}
