//! Morsel-driven hash group-by with parallel partial aggregation.
//!
//! Phase 1 splits the input into morsels — per-worker row ranges refined at
//! the chunk boundaries of the driving key column, so each morsel scans one
//! contiguous buffer — and folds each into a private hash map of partial
//! accumulators (no shared state, no locks). Phase 2 merges the per-worker
//! maps. Because workers walk the chunked columns through [`crate::column::Cursor`]s,
//! a multi-month `vstack` aggregates in place: no pre-merge compaction, no
//! row copies.
//!
//! The kernel is selection-aware: [`group_by_selection`] aggregates a
//! [`crate::view::Selection`] (a filtered/reordered view) directly, with
//! group order defined by first occurrence *in view order*.

use crate::column::{Column, Cursor, DType};
use crate::frame::{Frame, FrameError};
use crate::view::Selection;
use schedflow_dataflow::par;
use std::collections::HashMap;
use std::ops::Range;

/// An aggregation over one column (or over the group itself for `Count`).
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Number of rows in the group.
    Count,
    /// Sum of a numeric column (nulls ignored).
    Sum(String),
    /// Mean of a numeric column (nulls ignored).
    Mean(String),
    Min(String),
    Max(String),
    /// Median of a numeric column (nulls ignored).
    Median(String),
    /// Interpolated quantile `q` in `[0,1]` of a numeric column.
    Quantile(String, f64),
}

impl Agg {
    fn source(&self) -> Option<&str> {
        match self {
            Agg::Count => None,
            Agg::Sum(c) | Agg::Mean(c) | Agg::Min(c) | Agg::Max(c) | Agg::Median(c) => Some(c),
            Agg::Quantile(c, _) => Some(c),
        }
    }

    fn needs_values(&self) -> bool {
        matches!(self, Agg::Median(_) | Agg::Quantile(_, _))
    }
}

#[derive(Clone, Default)]
struct Accum {
    count: u64,
    /// Per-agg scalar state: (n, sum, min, max).
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Collected values for order statistics.
    values: Vec<f64>,
}

impl Accum {
    fn new() -> Self {
        Accum {
            count: 0,
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    fn push(&mut self, v: Option<f64>, collect: bool) {
        self.count += 1;
        if let Some(v) = v {
            self.n += 1;
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            if collect {
                self.values.push(v);
            }
        }
    }

    fn merge(&mut self, other: Accum) {
        self.count += other.count;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.values.extend(other.values);
    }
}

/// key -> (first view ordinal, base row of that ordinal, partial accumulators)
type GroupMap = HashMap<Vec<u8>, (usize, usize, Vec<Accum>)>;

/// Split `0..height` into per-worker morsels: `split_ranges` refined at the
/// driving column's chunk starts, so each morsel lies within one chunk.
/// Returns one morsel list per worker.
fn morsels(height: usize, chunk_starts: &[usize], workers: usize) -> Vec<Vec<Range<usize>>> {
    par::split_ranges(height, workers)
        .into_iter()
        .map(|r| {
            let mut parts = Vec::new();
            let mut pos = r.start;
            for &s in chunk_starts.iter().filter(|&&s| s > r.start && s < r.end) {
                parts.push(pos..s);
                pos = s;
            }
            parts.push(pos..r.end);
            parts
        })
        .collect()
}

/// Group `frame` by `keys` and compute `aggs`; output columns are named by
/// the paired strings. Groups appear in order of first occurrence.
pub fn group_by(frame: &Frame, keys: &[&str], aggs: &[(&str, Agg)]) -> Result<Frame, FrameError> {
    group_by_selection(frame, &Selection::All(frame.height()), keys, aggs)
}

/// Selection-aware group-by: aggregate the view rows of `sel` without
/// materializing them. Group order is first occurrence in view order.
pub(crate) fn group_by_selection(
    frame: &Frame,
    sel: &Selection,
    keys: &[&str],
    aggs: &[(&str, Agg)],
) -> Result<Frame, FrameError> {
    // Validate early so errors carry column names rather than panics.
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| frame.column(k))
        .collect::<Result<_, _>>()?;
    for c in &key_cols {
        if c.dtype() == DType::Float {
            return Err(FrameError::TypeMismatch {
                column: "<group key>".to_owned(),
                expected: DType::Str,
                got: DType::Float,
            });
        }
    }
    let agg_cols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|(_, a)| a.source().map(|c| frame.column(c)).transpose())
        .collect::<Result<_, _>>()?;
    let collect_flags: Vec<bool> = aggs.iter().map(|(_, a)| a.needs_values()).collect();

    let height = sel.len();

    // Phase 1: fold morsels into per-worker partial maps. Each worker owns
    // sequential cursors into every referenced column, so chunk lookup is
    // amortized O(1) even across month boundaries.
    let fold_morsels = |parts: &[Range<usize>]| -> GroupMap {
        let mut map: GroupMap = HashMap::new();
        let mut key_curs: Vec<Cursor<'_>> = key_cols.iter().map(|c| c.cursor()).collect();
        let mut agg_curs: Vec<Option<Cursor<'_>>> =
            agg_cols.iter().map(|c| c.map(Column::cursor)).collect();
        let mut key = Vec::with_capacity(keys.len() * 8);
        for range in parts {
            for ord in range.clone() {
                let row = sel.base(ord);
                key.clear();
                for (c, cur) in key_cols.iter().zip(key_curs.iter_mut()) {
                    encode_key_part(&mut key, c.dtype(), cur, row);
                }
                let entry = map
                    .entry(key.clone())
                    .or_insert_with(|| (ord, row, vec![Accum::new(); aggs.len()]));
                for (ai, acc) in entry.2.iter_mut().enumerate() {
                    let v = agg_curs[ai].as_mut().and_then(|c| c.get_f64(row));
                    acc.push(v, collect_flags[ai]);
                }
            }
        }
        map
    };

    let workers = par::threads();
    let align = key_cols.first().map_or(&[0usize][..], |c| c.chunk_starts());
    let worker_parts = morsels(height, align, workers);
    let partials: Vec<GroupMap> = if height < par::PAR_THRESHOLD || worker_parts.len() <= 1 {
        vec![fold_morsels(std::slice::from_ref(&(0..height)))]
    } else {
        std::thread::scope(|scope| {
            let joins: Vec<_> = worker_parts
                .iter()
                .map(|parts| {
                    let fold_morsels = &fold_morsels;
                    scope.spawn(move || fold_morsels(parts))
                })
                .collect();
            joins
                .into_iter()
                // Re-raise worker panics on the coordinating thread.
                .map(|j| j.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    };

    // Phase 2: merge.
    let mut merged: GroupMap = HashMap::new();
    for partial in partials {
        for (key, (first_ord, first_row, accs)) in partial {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((first_ord, first_row, accs));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let slot = e.get_mut();
                    if first_ord < slot.0 {
                        slot.0 = first_ord;
                        slot.1 = first_row;
                    }
                    for (dst, src) in slot.2.iter_mut().zip(accs) {
                        dst.merge(src);
                    }
                }
            }
        }
    }

    // Stable output order: first occurrence in view order.
    let mut groups: Vec<(usize, usize, Vec<Accum>)> = merged.into_values().collect();
    groups.sort_by_key(|(first_ord, _, _)| *first_ord);

    // Key columns from representative base rows.
    let rep_rows: Vec<usize> = groups.iter().map(|(_, row, _)| *row).collect();
    let mut out = Frame::new();
    for (ki, k) in keys.iter().enumerate() {
        out.add_column(k, key_cols[ki].take(&rep_rows))?;
    }

    // Aggregate columns.
    for (ai, (name, agg)) in aggs.iter().enumerate() {
        let col = match agg {
            Agg::Count => {
                Column::from_i64(groups.iter().map(|(_, _, a)| a[ai].count as i64).collect())
            }
            Agg::Sum(_) => Column::from_f64(groups.iter().map(|(_, _, a)| a[ai].sum).collect()),
            Agg::Mean(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, _, a)| {
                        let acc = &a[ai];
                        (acc.n > 0).then(|| acc.sum / acc.n as f64)
                    })
                    .collect(),
            ),
            Agg::Min(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, _, a)| (a[ai].n > 0).then_some(a[ai].min))
                    .collect(),
            ),
            Agg::Max(_) => Column::from_opt_f64(
                groups
                    .iter()
                    .map(|(_, _, a)| (a[ai].n > 0).then_some(a[ai].max))
                    .collect(),
            ),
            Agg::Median(_) => quantile_column(&groups, ai, 0.5),
            Agg::Quantile(_, q) => quantile_column(&groups, ai, *q),
        };
        out.add_column(name, col)?;
    }
    Ok(out)
}

/// Append one key column's value at `row` to the group key encoding.
/// Tags match the pre-chunked format: 0 null, 1 int, 2 bool, 3 str.
fn encode_key_part(key: &mut Vec<u8>, dtype: DType, cur: &mut Cursor<'_>, row: usize) {
    match dtype {
        DType::Int => match cur.get_i64(row) {
            None => key.push(0),
            Some(v) => {
                key.push(1);
                key.extend_from_slice(&v.to_le_bytes());
            }
        },
        DType::Bool => match cur.get_i64(row) {
            None => key.push(0),
            Some(v) => {
                key.push(2);
                key.push(v as u8);
            }
        },
        DType::Str => match cur.get_str(row) {
            None => key.push(0),
            Some(s) => {
                key.push(3);
                key.extend_from_slice(&(s.len() as u32).to_le_bytes());
                key.extend_from_slice(s.as_bytes());
            }
        },
        DType::Float => unreachable!("float keys rejected above"),
    }
}

fn quantile_column(groups: &[(usize, usize, Vec<Accum>)], ai: usize, q: f64) -> Column {
    Column::from_opt_f64(
        groups
            .iter()
            .map(|(_, _, a)| {
                let mut vals = a[ai].values.clone();
                if vals.is_empty() {
                    return None;
                }
                vals.sort_by(f64::total_cmp);
                Some(crate::stats::quantile_sorted(&vals, q))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(
                    ["a", "b", "a", "c", "b", "a"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
            )
            .with("wait", Column::from_i64(vec![10, 20, 30, 40, 60, 50]))
    }

    #[test]
    fn count_per_group_in_first_occurrence_order() {
        let g = group_by(&sample(), &["user"], &[("n", Agg::Count)]).unwrap();
        assert_eq!(g.str("user").unwrap().str_values(), &["a", "b", "c"]);
        assert_eq!(g.i64("n").unwrap().i64_values(), &[3, 2, 1]);
    }

    #[test]
    fn sum_mean_min_max() {
        let g = group_by(
            &sample(),
            &["user"],
            &[
                ("sum", Agg::Sum("wait".into())),
                ("mean", Agg::Mean("wait".into())),
                ("min", Agg::Min("wait".into())),
                ("max", Agg::Max("wait".into())),
            ],
        )
        .unwrap();
        assert_eq!(g.f64("sum").unwrap().f64_values(), &[90.0, 80.0, 40.0]);
        assert_eq!(g.column("mean").unwrap().get_f64(0), Some(30.0));
        assert_eq!(g.column("min").unwrap().get_f64(1), Some(20.0));
        assert_eq!(g.column("max").unwrap().get_f64(0), Some(50.0));
    }

    #[test]
    fn median_and_quantile() {
        let g = group_by(
            &sample(),
            &["user"],
            &[
                ("med", Agg::Median("wait".into())),
                ("p75", Agg::Quantile("wait".into(), 0.75)),
            ],
        )
        .unwrap();
        assert_eq!(g.column("med").unwrap().get_f64(0), Some(30.0));
        // user a values {10,30,50}: p75 interpolates 30..50.
        let p75 = g.column("p75").unwrap().get_f64(0).unwrap();
        assert!((p75 - 40.0).abs() < 1e-9, "{p75}");
    }

    #[test]
    fn composite_keys() {
        let f = sample().with(
            "state",
            Column::from_str(
                ["ok", "ok", "bad", "ok", "ok", "bad"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
        );
        let g = group_by(&f, &["user", "state"], &[("n", Agg::Count)]).unwrap();
        assert_eq!(g.height(), 4); // (a,ok) (b,ok) (a,bad) (c,ok)
        assert_eq!(g.width(), 3);
    }

    #[test]
    fn nulls_ignored_in_aggregates_but_counted_in_count() {
        let f = Frame::new()
            .with("k", Column::from_str(vec!["x".into(), "x".into()]))
            .with("v", Column::from_opt_i64(vec![Some(4), None]));
        let g = group_by(
            &f,
            &["k"],
            &[("n", Agg::Count), ("mean", Agg::Mean("v".into()))],
        )
        .unwrap();
        assert_eq!(g.i64("n").unwrap().i64_values(), &[2]);
        assert_eq!(g.column("mean").unwrap().get_f64(0), Some(4.0));
    }

    #[test]
    fn all_null_group_has_null_mean() {
        let f = Frame::new()
            .with("k", Column::from_str(vec!["x".into()]))
            .with("v", Column::from_opt_i64(vec![None]));
        let g = group_by(&f, &["k"], &[("mean", Agg::Mean("v".into()))]).unwrap();
        assert_eq!(g.column("mean").unwrap().get_f64(0), None);
    }

    #[test]
    fn float_keys_rejected() {
        let f = Frame::new().with("k", Column::from_f64(vec![1.0]));
        assert!(group_by(&f, &["k"], &[("n", Agg::Count)]).is_err());
    }

    #[test]
    fn large_input_parallel_matches_sequential_semantics() {
        // Build a frame large enough to trigger the parallel path.
        let n = 50_000usize;
        let users: Vec<String> = (0..n).map(|i| format!("u{}", i % 37)).collect();
        let waits: Vec<i64> = (0..n as i64).collect();
        let f = Frame::new()
            .with("user", Column::from_str(users))
            .with("wait", Column::from_i64(waits));
        let g = group_by(
            &f,
            &["user"],
            &[("n", Agg::Count), ("sum", Agg::Sum("wait".into()))],
        )
        .unwrap();
        assert_eq!(g.height(), 37);
        let total: i64 = g.i64("n").unwrap().i64_values().iter().sum();
        assert_eq!(total as usize, n);
        let sum: f64 = g.f64("sum").unwrap().f64_values().iter().sum();
        assert_eq!(sum, (n as f64 - 1.0) * n as f64 / 2.0);
    }

    #[test]
    fn aggregates_multi_chunk_merges_without_compaction() {
        // Two "months" stacked: the kernel must cross the chunk seam with
        // cursors, not copies, and match the single-chunk result.
        let merged = Frame::vstack(&[sample(), sample()]).unwrap();
        crate::copycount::reset();
        let g = group_by(
            &merged,
            &["user"],
            &[("n", Agg::Count), ("sum", Agg::Sum("wait".into()))],
        )
        .unwrap();
        // Only the 3 representative key rows materialize.
        assert_eq!(crate::copycount::rows_copied(), 3);
        let eager = group_by(
            &merged.compact(),
            &["user"],
            &[("n", Agg::Count), ("sum", Agg::Sum("wait".into()))],
        )
        .unwrap();
        assert_eq!(g, eager);
        assert_eq!(g.i64("n").unwrap().i64_values(), &[6, 4, 2]);
    }

    #[test]
    fn view_group_by_respects_selection_and_order() {
        let f = sample();
        // Drop row 0 ("a",10): first occurrence order becomes b, a, c.
        let v = f
            .view()
            .filter(&[false, true, true, true, true, true])
            .unwrap();
        let g = v
            .group_by(&["user"], &[("sum", Agg::Sum("wait".into()))])
            .unwrap();
        assert_eq!(g.str("user").unwrap().str_values(), &["b", "a", "c"]);
        assert_eq!(g.f64("sum").unwrap().f64_values(), &[80.0, 80.0, 40.0]);
    }

    #[test]
    fn morsels_align_to_chunk_starts() {
        let per_worker = morsels(10, &[0, 4, 8], 2);
        assert_eq!(per_worker.len(), 2);
        let flat: Vec<Range<usize>> = per_worker.into_iter().flatten().collect();
        // Covers 0..10 in order, splitting at 4 and 8.
        assert_eq!(flat.first().unwrap().start, 0);
        assert_eq!(flat.last().unwrap().end, 10);
        for w in flat.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(flat.iter().all(|r| !(r.start < 4 && r.end > 4)));
        assert!(flat.iter().all(|r| !(r.start < 8 && r.end > 8)));
    }
}
