//! CSV (and pipe-separated) serialization of frames.
//!
//! The paper's curate stage "reformats the dataset from pipe-separated text
//! to CSV for compatibility with Python-based analysis libraries"; this
//! module is the format boundary: a quoting writer, a quote-aware reader,
//! and best-effort type inference (string columns become int/float when every
//! non-empty value parses; empty cells become nulls).

use crate::column::{Column, Cursor, DType};
use crate::frame::{Frame, FrameError};
use schedflow_dataflow::store;
use std::io::{BufRead, Write};

/// Errors from CSV I/O.
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    Frame(FrameError),
    /// A data row's field count differs from the header's.
    RaggedRow {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// Unterminated quoted field.
    UnterminatedQuote {
        line: usize,
    },
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Frame(e) => write!(f, "csv frame error: {e}"),
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::Empty => write!(f, "empty csv input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<FrameError> for CsvError {
    fn from(e: FrameError) -> Self {
        CsvError::Frame(e)
    }
}

fn needs_quoting(field: &str, sep: char) -> bool {
    field.contains(sep) || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn quote_field(field: &str, sep: char) -> String {
    if needs_quoting(field, sep) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write a frame as delimiter-separated text with a header row.
pub fn write_delimited(frame: &Frame, writer: &mut impl Write, sep: char) -> Result<(), CsvError> {
    let names = frame.column_names();
    let header: Vec<String> = names.iter().map(|n| quote_field(n, sep)).collect();
    writeln!(writer, "{}", header.join(&sep.to_string()))?;
    // Per-column cursors: the row scan stays amortized O(1) per cell even
    // when the frame is a multi-month chunk concatenation.
    let mut cursors: Vec<Cursor<'_>> = frame.iter().map(|(_, c)| c.cursor()).collect();
    let mut line = String::with_capacity(256);
    for row in 0..frame.height() {
        line.clear();
        for (i, cur) in cursors.iter_mut().enumerate() {
            if i > 0 {
                line.push(sep);
            }
            line.push_str(&quote_field(&cur.cell(row).render(), sep));
        }
        writeln!(writer, "{line}")?;
    }
    // Flush explicitly: a `BufWriter` dropped without flushing swallows the
    // final write error, which is exactly how a full disk turns into a
    // silently truncated CSV.
    writer.flush()?;
    Ok(())
}

/// Write a frame as CSV.
pub fn write_csv(frame: &Frame, writer: &mut impl Write) -> Result<(), CsvError> {
    write_delimited(frame, writer, ',')
}

/// Write a frame to a CSV file through the durable store: the bytes are
/// serialized in memory, then land atomically (temp file → fsync → rename →
/// parent-dir fsync) with a checksum footer, so readers never observe a
/// torn or truncated CSV under crashes or injected I/O faults.
pub fn write_csv_path(frame: &Frame, path: &std::path::Path) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    write_csv(frame, &mut buf)?;
    store::ambient().write_atomic(path, &buf)?;
    Ok(())
}

/// Split one physical CSV record, honoring quotes. Returns fields.
fn split_record(line: &str, sep: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            in_quotes = true;
        } else if c == sep {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(cur);
    Ok(fields)
}

/// Read delimiter-separated text into a frame of string columns
/// (use [`infer_types`] afterwards for numeric columns).
pub fn read_delimited(reader: impl BufRead, sep: char) -> Result<Frame, CsvError> {
    let mut lines = reader.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                break split_record(&line, sep, no + 1)?;
            }
            None => return Err(CsvError::Empty),
        }
    };
    let width = header.len();
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); width];
    for (no, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_record(&line, sep, no + 1)?;
        if fields.len() != width {
            return Err(CsvError::RaggedRow {
                line: no + 1,
                expected: width,
                got: fields.len(),
            });
        }
        for (ci, f) in fields.into_iter().enumerate() {
            columns[ci].push(f);
        }
    }
    let mut frame = Frame::new();
    for (name, values) in header.into_iter().zip(columns) {
        frame.add_column(&name, Column::from_str(values))?;
    }
    Ok(frame)
}

/// Read a CSV file into a string-typed frame, verifying the store checksum
/// when present. A checksum-invalid file is quarantined to `<name>.corrupt`
/// and surfaced as an I/O error rather than parsed as damaged data; legacy
/// footerless files read as-is.
pub fn read_csv_path(path: &std::path::Path) -> Result<Frame, CsvError> {
    let payload = store::ambient().read_verified(path)?.into_bytes();
    read_delimited(std::io::Cursor::new(payload), ',')
}

/// Convert string columns to Int/Float where every non-empty value parses;
/// empty cells become nulls. Non-convertible columns stay strings.
///
/// Fails only if the input frame is itself inconsistent (duplicate column
/// names), surfaced as [`CsvError::Frame`] instead of a panic.
pub fn infer_types(frame: &Frame) -> Result<Frame, CsvError> {
    let mut out = Frame::new();
    for (name, col) in frame.iter() {
        let converted = match col.dtype() {
            DType::Str => try_numeric(col),
            _ => None,
        };
        out.add_column(name, converted.unwrap_or_else(|| col.clone()))?;
    }
    Ok(out)
}

/// Parse a string column into Int/Float if every non-empty, non-null value
/// parses; empty and null cells become nulls.
fn try_numeric(col: &Column) -> Option<Column> {
    if col.is_empty() {
        return None;
    }
    let mut any_value = false;
    // Integer attempt.
    let mut cur = col.cursor();
    let mut ints: Vec<Option<i64>> = Vec::with_capacity(col.len());
    let mut all_int = true;
    for row in 0..col.len() {
        let t = cur.get_str(row).map_or("", str::trim);
        if t.is_empty() {
            ints.push(None);
        } else if let Ok(i) = t.parse::<i64>() {
            any_value = true;
            ints.push(Some(i));
        } else {
            all_int = false;
            break;
        }
    }
    if all_int && any_value {
        return Some(Column::from_opt_i64(ints));
    }
    // Float attempt.
    let mut cur = col.cursor();
    let mut floats: Vec<Option<f64>> = Vec::with_capacity(col.len());
    for row in 0..col.len() {
        let t = cur.get_str(row).map_or("", str::trim);
        if t.is_empty() {
            floats.push(None);
        } else if let Ok(f) = t.parse::<f64>() {
            any_value = true;
            floats.push(Some(f));
        } else {
            return None;
        }
    }
    if any_value {
        Some(Column::from_opt_f64(floats))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DType;

    fn sample() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(vec!["alice".into(), "bob,jr".into(), "carol \"c\"".into()]),
            )
            .with("wait", Column::from_i64(vec![10, 20, 30]))
            .with("ratio", Column::from_f64(vec![0.5, 1.0, 2.25]))
    }

    #[test]
    fn round_trip_with_quoting() {
        let f = sample();
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\"bob,jr\""));
        assert!(text.contains("\"carol \"\"c\"\"\""));

        let back = read_delimited(std::io::Cursor::new(buf), ',').unwrap();
        assert_eq!(back.height(), 3);
        assert_eq!(back.str("user").unwrap().str_values()[1], "bob,jr");
        assert_eq!(back.str("user").unwrap().str_values()[2], "carol \"c\"");

        let typed = infer_types(&back).unwrap();
        assert_eq!(typed.column("wait").unwrap().dtype(), DType::Int);
        assert_eq!(typed.column("ratio").unwrap().dtype(), DType::Float);
        assert_eq!(typed.column("user").unwrap().dtype(), DType::Str);
        assert_eq!(typed.column("wait").unwrap().get_i64(2), Some(30));
        assert_eq!(typed.column("ratio").unwrap().get_f64(2), Some(2.25));
    }

    #[test]
    fn pipe_separated_round_trip() {
        let f = sample();
        let mut buf = Vec::new();
        write_delimited(&f, &mut buf, '|').unwrap();
        let back = read_delimited(std::io::Cursor::new(buf), '|').unwrap();
        assert_eq!(back.height(), 3);
        // Comma needs no quoting under pipe separation.
        assert_eq!(back.str("user").unwrap().str_values()[1], "bob,jr");
    }

    #[test]
    fn empty_cells_become_nulls_on_inference() {
        let csv = "a,b\n1,\n2,5\n";
        let f = read_delimited(std::io::Cursor::new(csv), ',').unwrap();
        let typed = infer_types(&f).unwrap();
        assert_eq!(typed.column("b").unwrap().get_i64(0), None);
        assert_eq!(typed.column("b").unwrap().get_i64(1), Some(5));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_delimited(std::io::Cursor::new(csv), ',');
        assert!(matches!(err, Err(CsvError::RaggedRow { line: 3, .. })));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "a\n\"oops\n";
        // The embedded newline splits the record; the first physical line of
        // the field is unterminated.
        assert!(read_delimited(std::io::Cursor::new(csv), ',').is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a,b\n\n1,2\n\n";
        let f = read_delimited(std::io::Cursor::new(csv), ',').unwrap();
        assert_eq!(f.height(), 1);
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(
            read_delimited(std::io::Cursor::new(""), ','),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn all_empty_column_stays_string() {
        let csv = "a,b\n1,\n2,\n";
        let typed = infer_types(&read_delimited(std::io::Cursor::new(csv), ',').unwrap()).unwrap();
        assert_eq!(typed.column("b").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("schedflow-csv-{}", std::process::id()));
        let path = dir.join("frame.csv");
        write_csv_path(&sample(), &path).unwrap();
        let back = infer_types(&read_csv_path(&path).unwrap()).unwrap();
        assert_eq!(back.height(), 3);
        assert_eq!(back.column("wait").unwrap().dtype(), DType::Int);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_write_is_checksummed_and_corruption_quarantined() {
        let dir =
            std::env::temp_dir().join(format!("schedflow-csv-durable-{}", std::process::id()));
        let path = dir.join("frame.csv");
        write_csv_path(&sample(), &path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(String::from_utf8_lossy(&raw).contains("SFCK1"), "footer");

        // Flip one payload byte: the read must quarantine, not parse.
        let mut bad = raw.clone();
        bad[0] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(read_csv_path(&path).is_err());
        assert!(!path.exists(), "corrupt file removed from its path");
        assert!(dir.join("frame.csv.corrupt").exists(), "evidence kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_int_then_float_becomes_float() {
        let csv = "x\n1\n2.5\n";
        let typed = infer_types(&read_delimited(std::io::Cursor::new(csv), ',').unwrap()).unwrap();
        assert_eq!(typed.column("x").unwrap().dtype(), DType::Float);
        assert_eq!(typed.column("x").unwrap().get_f64(0), Some(1.0));
    }
}
