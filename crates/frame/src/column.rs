//! Typed columns with validity masks.
//!
//! A [`Column`] is a contiguous, homogeneously typed vector plus an optional
//! validity mask (absent mask = all valid). The layout is deliberately flat —
//! `Vec<i64>` / `Vec<f64>` / `Vec<String>` — so kernels stream through cache
//! lines and parallel chunking (via `schedflow_dataflow::par`) is trivial.

use serde::{Deserialize, Serialize};

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    Int,
    Float,
    Str,
    Bool,
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A scalar cell value (used at API edges: CSV, display, group keys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Cell {
    pub fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format_float(*v),
            Cell::Str(s) => s.clone(),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

/// Render a float the way we write CSV: no trailing `.0` noise for integral
/// values, full precision otherwise.
pub fn format_float(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// A typed column of values with an optional validity mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Int {
        values: Vec<i64>,
        validity: Option<Vec<bool>>,
    },
    Float {
        values: Vec<f64>,
        validity: Option<Vec<bool>>,
    },
    Str {
        values: Vec<String>,
        validity: Option<Vec<bool>>,
    },
    Bool {
        values: Vec<bool>,
        validity: Option<Vec<bool>>,
    },
}

impl Column {
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::Int {
            values,
            validity: None,
        }
    }

    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float {
            values,
            validity: None,
        }
    }

    pub fn from_str(values: Vec<String>) -> Self {
        Column::Str {
            values,
            validity: None,
        }
    }

    pub fn from_bool(values: Vec<bool>) -> Self {
        Column::Bool {
            values,
            validity: None,
        }
    }

    /// Build an Int column from options (None = null).
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let vals: Vec<i64> = values.into_iter().map(|v| v.unwrap_or(0)).collect();
        let all_valid = validity.iter().all(|&b| b);
        Column::Int {
            values: vals,
            validity: if all_valid { None } else { Some(validity) },
        }
    }

    /// Build a Float column from options (None = null).
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let vals: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        let all_valid = validity.iter().all(|&b| b);
        Column::Float {
            values: vals,
            validity: if all_valid { None } else { Some(validity) },
        }
    }

    pub fn dtype(&self) -> DType {
        match self {
            Column::Int { .. } => DType::Int,
            Column::Float { .. } => DType::Float,
            Column::Str { .. } => DType::Str,
            Column::Bool { .. } => DType::Bool,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Str { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validity(&self) -> Option<&Vec<bool>> {
        match self {
            Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity.as_ref(),
        }
    }

    /// Is row `i` valid (non-null)?
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity().map_or(true, |v| v[i])
    }

    /// Count of null entries.
    pub fn null_count(&self) -> usize {
        self.validity()
            .map_or(0, |v| v.iter().filter(|&&b| !b).count())
    }

    /// Cell value at row `i`.
    pub fn cell(&self, i: usize) -> Cell {
        if !self.is_valid(i) {
            return Cell::Null;
        }
        match self {
            Column::Int { values, .. } => Cell::Int(values[i]),
            Column::Float { values, .. } => Cell::Float(values[i]),
            Column::Str { values, .. } => Cell::Str(values[i].clone()),
            Column::Bool { values, .. } => Cell::Bool(values[i]),
        }
    }

    /// Raw i64 slice (panics for other dtypes — caller checked dtype).
    pub fn i64_values(&self) -> &[i64] {
        match self {
            Column::Int { values, .. } => values,
            other => panic!("expected int column, found {}", other.dtype()),
        }
    }

    pub fn f64_values(&self) -> &[f64] {
        match self {
            Column::Float { values, .. } => values,
            other => panic!("expected float column, found {}", other.dtype()),
        }
    }

    pub fn str_values(&self) -> &[String] {
        match self {
            Column::Str { values, .. } => values,
            other => panic!("expected str column, found {}", other.dtype()),
        }
    }

    pub fn bool_values(&self) -> &[bool] {
        match self {
            Column::Bool { values, .. } => values,
            other => panic!("expected bool column, found {}", other.dtype()),
        }
    }

    /// Value at row `i` as `Option<i64>`, honoring nulls.
    pub fn get_i64(&self, i: usize) -> Option<i64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(i64::from(values[i])),
            _ => None,
        }
    }

    /// Value at row `i` as `Option<f64>` (ints widen), honoring nulls.
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int { values, .. } => Some(values[i] as f64),
            Column::Float { values, .. } => Some(values[i]),
            _ => None,
        }
    }

    /// Value at row `i` as `Option<&str>`, honoring nulls.
    pub fn get_str(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Str { values, .. } => Some(&values[i]),
            _ => None,
        }
    }

    /// Build a boolean mask by applying `pred` to each valid numeric value;
    /// null rows map to false.
    pub fn mask_f64(&self, pred: impl Fn(f64) -> bool) -> Vec<bool> {
        (0..self.len())
            .map(|i| self.get_f64(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// Build a boolean mask over string values; null rows map to false.
    pub fn mask_str(&self, pred: impl Fn(&str) -> bool) -> Vec<bool> {
        (0..self.len())
            .map(|i| self.get_str(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// New column keeping only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        fn keep<T: Clone>(values: &[T], mask: &[bool]) -> Vec<T> {
            values
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| v.clone())
                .collect()
        }
        let validity = self.validity().map(|v| keep(v, mask));
        match self {
            Column::Int { values, .. } => Column::Int {
                values: keep(values, mask),
                validity,
            },
            Column::Float { values, .. } => Column::Float {
                values: keep(values, mask),
                validity,
            },
            Column::Str { values, .. } => Column::Str {
                values: keep(values, mask),
                validity,
            },
            Column::Bool { values, .. } => Column::Bool {
                values: keep(values, mask),
                validity,
            },
        }
    }

    /// New column with rows reordered by `indices` (a permutation or subset).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(values: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| values[i].clone()).collect()
        }
        let validity = self.validity().map(|v| gather(v, indices));
        match self {
            Column::Int { values, .. } => Column::Int {
                values: gather(values, indices),
                validity,
            },
            Column::Float { values, .. } => Column::Float {
                values: gather(values, indices),
                validity,
            },
            Column::Str { values, .. } => Column::Str {
                values: gather(values, indices),
                validity,
            },
            Column::Bool { values, .. } => Column::Bool {
                values: gather(values, indices),
                validity,
            },
        }
    }

    /// Cast to float (ints widen; nulls preserved). Str/Bool return None.
    pub fn to_f64_vec(&self) -> Option<Vec<Option<f64>>> {
        match self.dtype() {
            DType::Int | DType::Float => {
                Some((0..self.len()).map(|i| self.get_f64(i)).collect())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction_and_access() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get_i64(1), Some(2));
        assert_eq!(c.get_f64(2), Some(3.0));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn nullable_columns() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3)]);
        assert_eq!(c.null_count(), 1);
        assert!(!c.is_valid(1));
        assert_eq!(c.get_i64(1), None);
        assert_eq!(c.cell(1), Cell::Null);
        assert_eq!(c.cell(0), Cell::Int(1));
    }

    #[test]
    fn all_some_collapses_mask() {
        let c = Column::from_opt_i64(vec![Some(1), Some(2)]);
        assert_eq!(c.null_count(), 0);
        assert!(matches!(c, Column::Int { validity: None, .. }));
    }

    #[test]
    fn masks_treat_null_as_false() {
        let c = Column::from_opt_f64(vec![Some(1.0), None, Some(10.0)]);
        assert_eq!(c.mask_f64(|v| v > 0.5), vec![true, false, true]);
    }

    #[test]
    fn filter_preserves_validity() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3), None]);
        let filtered = c.filter(&[true, true, false, true]);
        assert_eq!(filtered.len(), 3);
        assert_eq!(filtered.get_i64(0), Some(1));
        assert_eq!(filtered.get_i64(1), None);
        assert_eq!(filtered.get_i64(2), None);
    }

    #[test]
    fn take_reorders() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "c".into()]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.str_values(), &["c", "a", "a"]);
    }

    #[test]
    fn string_masks() {
        let c = Column::from_str(vec!["COMPLETED".into(), "FAILED".into()]);
        assert_eq!(c.mask_str(|s| s == "FAILED"), vec![false, true]);
        assert_eq!(c.get_str(0), Some("COMPLETED"));
    }

    #[test]
    #[should_panic(expected = "expected int column")]
    fn wrong_dtype_access_panics() {
        Column::from_f64(vec![1.0]).i64_values();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(2.5), "2.5");
        assert_eq!(format_float(0.1 + 0.2), "0.30000000000000004");
    }

    #[test]
    fn bool_widens_to_int() {
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.get_i64(0), Some(1));
        assert_eq!(c.get_i64(1), Some(0));
    }
}
