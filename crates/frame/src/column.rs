//! Typed columns as `Arc`-shared immutable chunks with validity masks.
//!
//! A [`Column`] is an ordered list of [`Chunk`] windows over immutable,
//! reference-counted [`ChunkData`] buffers. Each buffer is a contiguous,
//! homogeneously typed vector — `Vec<i64>` / `Vec<f64>` / `Vec<String>` —
//! plus an optional validity mask (absent mask = all valid), so kernels
//! stream through cache lines one chunk at a time.
//!
//! The chunked layout is what makes the data plane zero-copy:
//!
//! * concatenation ([`Column::concat`], used by `Frame::vstack`) appends
//!   chunk descriptors — O(chunks) pointer work, zero row copies;
//! * slicing ([`Column::slice`], used by `Frame::head`/`Frame::slice`)
//!   narrows chunk windows without touching the underlying buffers;
//! * cloning a column clones `Arc`s, so `select` and frame clones share
//!   storage.
//!
//! Only explicitly materializing operations (`filter`, `take`, [`Column::compact`])
//! copy rows, and each reports its copies to [`crate::copycount`].

use crate::copycount;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    Int,
    Float,
    Str,
    Bool,
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A scalar cell value (used at API edges: CSV, display, group keys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Cell {
    pub fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format_float(*v),
            Cell::Str(s) => s.clone(),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

/// Render a float the way we write CSV: no trailing `.0` noise for integral
/// values, full precision otherwise.
pub fn format_float(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// One immutable, contiguous, typed buffer plus an optional validity mask.
///
/// This is also the (de)serialization form of a whole column — the wire
/// format is unchanged from the pre-chunked flat layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChunkData {
    Int {
        values: Vec<i64>,
        validity: Option<Vec<bool>>,
    },
    Float {
        values: Vec<f64>,
        validity: Option<Vec<bool>>,
    },
    Str {
        values: Vec<String>,
        validity: Option<Vec<bool>>,
    },
    Bool {
        values: Vec<bool>,
        validity: Option<Vec<bool>>,
    },
}

impl ChunkData {
    pub fn dtype(&self) -> DType {
        match self {
            ChunkData::Int { .. } => DType::Int,
            ChunkData::Float { .. } => DType::Float,
            ChunkData::Str { .. } => DType::Str,
            ChunkData::Bool { .. } => DType::Bool,
        }
    }

    fn len(&self) -> usize {
        match self {
            ChunkData::Int { values, .. } => values.len(),
            ChunkData::Float { values, .. } => values.len(),
            ChunkData::Str { values, .. } => values.len(),
            ChunkData::Bool { values, .. } => values.len(),
        }
    }

    fn validity(&self) -> Option<&Vec<bool>> {
        match self {
            ChunkData::Int { validity, .. }
            | ChunkData::Float { validity, .. }
            | ChunkData::Str { validity, .. }
            | ChunkData::Bool { validity, .. } => validity.as_ref(),
        }
    }

    /// Is buffer position `i` valid (non-null)?
    fn is_valid(&self, i: usize) -> bool {
        // MSRV 1.80: `Option::is_none_or` lands in 1.82.
        self.validity().map_or(true, |v| v[i])
    }

    fn empty(dtype: DType) -> ChunkData {
        match dtype {
            DType::Int => ChunkData::Int {
                values: Vec::new(),
                validity: None,
            },
            DType::Float => ChunkData::Float {
                values: Vec::new(),
                validity: None,
            },
            DType::Str => ChunkData::Str {
                values: Vec::new(),
                validity: None,
            },
            DType::Bool => ChunkData::Bool {
                values: Vec::new(),
                validity: None,
            },
        }
    }
}

/// A window `[offset, offset + len)` into a shared [`ChunkData`] buffer.
#[derive(Debug, Clone)]
pub struct Chunk {
    data: Arc<ChunkData>,
    offset: usize,
    len: usize,
}

/// A typed column: an ordered list of chunk windows over shared buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "ChunkData", into = "ChunkData")]
pub struct Column {
    dtype: DType,
    len: usize,
    chunks: Vec<Chunk>,
    /// `starts[i]` is the global row index at which chunk `i` begins.
    starts: Vec<usize>,
}

impl From<ChunkData> for Column {
    fn from(data: ChunkData) -> Self {
        Column::from_chunk(data)
    }
}

impl From<Column> for ChunkData {
    fn from(col: Column) -> Self {
        col.to_dense()
    }
}

/// Equality is logical: same dtype, same length, same cell values — the
/// chunking is an implementation detail and does not participate.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.dtype != other.dtype || self.len != other.len {
            return false;
        }
        let mut a = self.cursor();
        let mut b = other.cursor();
        (0..self.len).all(|i| {
            let (da, ia) = a.locate(i);
            let (db, ib) = b.locate(i);
            match (da.is_valid(ia), db.is_valid(ib)) {
                (false, false) => true,
                (true, true) => match (da, db) {
                    (ChunkData::Int { values: va, .. }, ChunkData::Int { values: vb, .. }) => {
                        va[ia] == vb[ib]
                    }
                    (ChunkData::Float { values: va, .. }, ChunkData::Float { values: vb, .. }) => {
                        va[ia] == vb[ib]
                    }
                    (ChunkData::Str { values: va, .. }, ChunkData::Str { values: vb, .. }) => {
                        va[ia] == vb[ib]
                    }
                    (ChunkData::Bool { values: va, .. }, ChunkData::Bool { values: vb, .. }) => {
                        va[ia] == vb[ib]
                    }
                    _ => unreachable!("dtype compared above"),
                },
                _ => false,
            }
        })
    }
}

impl Column {
    /// Wrap one dense buffer as a single-chunk column.
    pub fn from_chunk(data: ChunkData) -> Self {
        let dtype = data.dtype();
        let len = data.len();
        Column {
            dtype,
            len,
            chunks: vec![Chunk {
                data: Arc::new(data),
                offset: 0,
                len,
            }],
            starts: vec![0],
        }
    }

    fn from_chunks(dtype: DType, chunks: Vec<Chunk>) -> Self {
        if chunks.is_empty() {
            return Column::from_chunk(ChunkData::empty(dtype));
        }
        let mut starts = Vec::with_capacity(chunks.len());
        let mut len = 0;
        for ch in &chunks {
            starts.push(len);
            len += ch.len;
        }
        Column {
            dtype,
            len,
            chunks,
            starts,
        }
    }

    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::from_chunk(ChunkData::Int {
            values,
            validity: None,
        })
    }

    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::from_chunk(ChunkData::Float {
            values,
            validity: None,
        })
    }

    // Named alongside `from_i64`/`from_f64`/`from_bool`; not `FromStr`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(values: Vec<String>) -> Self {
        Column::from_chunk(ChunkData::Str {
            values,
            validity: None,
        })
    }

    pub fn from_bool(values: Vec<bool>) -> Self {
        Column::from_chunk(ChunkData::Bool {
            values,
            validity: None,
        })
    }

    /// Build an Int column from options (None = null).
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let vals: Vec<i64> = values.into_iter().map(|v| v.unwrap_or(0)).collect();
        let all_valid = validity.iter().all(|&b| b);
        Column::from_chunk(ChunkData::Int {
            values: vals,
            validity: if all_valid { None } else { Some(validity) },
        })
    }

    /// Build a Float column from options (None = null).
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let vals: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        let all_valid = validity.iter().all(|&b| b);
        Column::from_chunk(ChunkData::Float {
            values: vals,
            validity: if all_valid { None } else { Some(validity) },
        })
    }

    /// Build a Str column from options (None = null).
    pub fn from_opt_str(values: Vec<Option<String>>) -> Self {
        let validity: Vec<bool> = values.iter().map(Option::is_some).collect();
        let vals: Vec<String> = values.into_iter().map(Option::unwrap_or_default).collect();
        let all_valid = validity.iter().all(|&b| b);
        Column::from_chunk(ChunkData::Str {
            values: vals,
            validity: if all_valid { None } else { Some(validity) },
        })
    }

    pub fn dtype(&self) -> DType {
        self.dtype
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunk windows backing this column.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Global row index at which each chunk begins (morsel alignment hint).
    pub fn chunk_starts(&self) -> &[usize] {
        &self.starts
    }

    /// Resolve global row `i` to its backing buffer and buffer position.
    fn locate(&self, i: usize) -> (&ChunkData, usize) {
        debug_assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        if self.chunks.len() == 1 {
            let ch = &self.chunks[0];
            return (&ch.data, ch.offset + i);
        }
        let ci = self.starts.partition_point(|&s| s <= i) - 1;
        let ch = &self.chunks[ci];
        (&ch.data, ch.offset + i - self.starts[ci])
    }

    /// Sequential accessor with an amortized O(1) chunk hint — the kernel-side
    /// companion of the chunked layout (morsel loops are monotonic per worker).
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor { col: self, ci: 0 }
    }

    /// Is row `i` valid (non-null)?
    pub fn is_valid(&self, i: usize) -> bool {
        let (data, li) = self.locate(i);
        data.is_valid(li)
    }

    /// Count of null entries.
    pub fn null_count(&self) -> usize {
        self.chunks
            .iter()
            .map(|ch| match ch.data.validity() {
                None => 0,
                Some(v) => v[ch.offset..ch.offset + ch.len]
                    .iter()
                    .filter(|&&b| !b)
                    .count(),
            })
            .sum()
    }

    /// Cell value at row `i`.
    pub fn cell(&self, i: usize) -> Cell {
        let (data, li) = self.locate(i);
        cell_at(data, li)
    }

    /// Raw i64 slice (panics for other dtypes or multi-chunk columns — the
    /// caller checked dtype and contiguity).
    pub fn i64_values(&self) -> &[i64] {
        if self.dtype != DType::Int {
            panic!("expected int column, found {}", self.dtype);
        }
        let ch = self.expect_contiguous();
        let ChunkData::Int { values, .. } = &*ch.data else {
            unreachable!("dtype checked above");
        };
        &values[ch.offset..ch.offset + ch.len]
    }

    pub fn f64_values(&self) -> &[f64] {
        if self.dtype != DType::Float {
            panic!("expected float column, found {}", self.dtype);
        }
        let ch = self.expect_contiguous();
        let ChunkData::Float { values, .. } = &*ch.data else {
            unreachable!("dtype checked above");
        };
        &values[ch.offset..ch.offset + ch.len]
    }

    pub fn str_values(&self) -> &[String] {
        if self.dtype != DType::Str {
            panic!("expected str column, found {}", self.dtype);
        }
        let ch = self.expect_contiguous();
        let ChunkData::Str { values, .. } = &*ch.data else {
            unreachable!("dtype checked above");
        };
        &values[ch.offset..ch.offset + ch.len]
    }

    pub fn bool_values(&self) -> &[bool] {
        if self.dtype != DType::Bool {
            panic!("expected bool column, found {}", self.dtype);
        }
        let ch = self.expect_contiguous();
        let ChunkData::Bool { values, .. } = &*ch.data else {
            unreachable!("dtype checked above");
        };
        &values[ch.offset..ch.offset + ch.len]
    }

    fn expect_contiguous(&self) -> &Chunk {
        assert!(
            self.chunks.len() == 1,
            "slice access on a column with {} chunks; compact() first or use a cursor",
            self.chunks.len()
        );
        &self.chunks[0]
    }

    /// Value at row `i` as `Option<i64>`, honoring nulls.
    pub fn get_i64(&self, i: usize) -> Option<i64> {
        let (data, li) = self.locate(i);
        get_i64_at(data, li)
    }

    /// Value at row `i` as `Option<f64>` (ints widen), honoring nulls.
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        let (data, li) = self.locate(i);
        get_f64_at(data, li)
    }

    /// Value at row `i` as `Option<&str>`, honoring nulls.
    pub fn get_str(&self, i: usize) -> Option<&str> {
        let (data, li) = self.locate(i);
        get_str_at(data, li)
    }

    /// Build a boolean mask by applying `pred` to each valid numeric value;
    /// null rows map to false.
    pub fn mask_f64(&self, pred: impl Fn(f64) -> bool) -> Vec<bool> {
        let mut cur = self.cursor();
        (0..self.len)
            .map(|i| cur.get_f64(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// Build a boolean mask over string values; null rows map to false.
    pub fn mask_str(&self, pred: impl Fn(&str) -> bool) -> Vec<bool> {
        let mut cur = self.cursor();
        (0..self.len)
            .map(|i| cur.get_str(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// New column keeping only rows where `mask` is true (materializes).
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        let kept = mask.iter().filter(|&&m| m).count();
        let rows = mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i));
        Column::from_chunk(self.gather(rows, kept))
    }

    /// New column with rows reordered by `indices` (materializes).
    pub fn take(&self, indices: &[usize]) -> Column {
        Column::from_chunk(self.gather(indices.iter().copied(), indices.len()))
    }

    /// Zero-copy window: rows `[offset, offset + len)` as shared chunk views.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {}) out of bounds (len {})",
            offset + len,
            self.len
        );
        let mut chunks = Vec::new();
        let mut pos = offset;
        let mut remaining = len;
        while remaining > 0 {
            let ci = self.starts.partition_point(|&s| s <= pos) - 1;
            let ch = &self.chunks[ci];
            let local = pos - self.starts[ci];
            let take = (ch.len - local).min(remaining);
            chunks.push(Chunk {
                data: Arc::clone(&ch.data),
                offset: ch.offset + local,
                len: take,
            });
            pos += take;
            remaining -= take;
        }
        Column::from_chunks(self.dtype, chunks)
    }

    /// Zero-copy concatenation: the chunk lists are appended; no row moves.
    pub fn concat(cols: &[&Column]) -> Column {
        let dtype = cols.first().map_or(DType::Int, |c| c.dtype);
        debug_assert!(
            cols.iter().all(|c| c.dtype == dtype),
            "dtype checked by caller"
        );
        let chunks: Vec<Chunk> = cols
            .iter()
            .flat_map(|c| c.chunks.iter().filter(|ch| ch.len > 0).cloned())
            .collect();
        Column::from_chunks(dtype, chunks)
    }

    /// Materialize into one fresh contiguous chunk (always copies rows —
    /// this is the explicit opposite of the zero-copy path, and the bench
    /// uses it to emulate the pre-chunked eager cost model).
    pub fn compact(&self) -> Column {
        Column::from_chunk(self.gather(0..self.len, self.len))
    }

    /// Gather `rows` into a dense buffer, reporting the copies.
    fn gather(&self, rows: impl Iterator<Item = usize>, out_len: usize) -> ChunkData {
        copycount::add(out_len as u64);
        let mut cur = self.cursor();
        let mut nulls = 0usize;
        let mut validity: Vec<bool> = Vec::with_capacity(out_len);
        macro_rules! gather_variant {
            ($variant:ident, $ty:ty, $clone:expr) => {{
                let mut values: Vec<$ty> = Vec::with_capacity(out_len);
                for r in rows {
                    let (data, li) = cur.locate(r);
                    let ChunkData::$variant { values: v, .. } = data else {
                        unreachable!("homogeneous column");
                    };
                    let ok = data.is_valid(li);
                    nulls += usize::from(!ok);
                    validity.push(ok);
                    #[allow(clippy::redundant_closure_call)]
                    values.push($clone(&v[li]));
                }
                ChunkData::$variant {
                    values,
                    validity: (nulls > 0).then_some(validity),
                }
            }};
        }
        match self.dtype {
            DType::Int => gather_variant!(Int, i64, |v: &i64| *v),
            DType::Float => gather_variant!(Float, f64, |v: &f64| *v),
            DType::Str => gather_variant!(Str, String, |v: &String| v.clone()),
            DType::Bool => gather_variant!(Bool, bool, |v: &bool| *v),
        }
    }

    /// Flatten to one dense buffer without touching the copy counter (serde
    /// and other representation changes, not data-plane row materialization).
    fn to_dense(&self) -> ChunkData {
        let nulls = self.null_count();
        let validity: Option<Vec<bool>> = (nulls > 0).then(|| {
            let mut cur = self.cursor();
            (0..self.len)
                .map(|i| {
                    let (d, li) = cur.locate(i);
                    d.is_valid(li)
                })
                .collect()
        });
        macro_rules! dense_variant {
            ($variant:ident, $ty:ty) => {{
                let mut values: Vec<$ty> = Vec::with_capacity(self.len);
                for ch in &self.chunks {
                    let ChunkData::$variant { values: v, .. } = &*ch.data else {
                        unreachable!("homogeneous column");
                    };
                    values.extend_from_slice(&v[ch.offset..ch.offset + ch.len]);
                }
                ChunkData::$variant { values, validity }
            }};
        }
        match self.dtype {
            DType::Int => dense_variant!(Int, i64),
            DType::Float => dense_variant!(Float, f64),
            DType::Str => dense_variant!(Str, String),
            DType::Bool => dense_variant!(Bool, bool),
        }
    }

    /// Cast to float (ints widen; nulls preserved). Str/Bool return None.
    pub fn to_f64_vec(&self) -> Option<Vec<Option<f64>>> {
        match self.dtype {
            DType::Int | DType::Float => {
                let mut cur = self.cursor();
                Some((0..self.len).map(|i| cur.get_f64(i)).collect())
            }
            _ => None,
        }
    }

    /// Estimated resident bytes of the rows visible through this column's
    /// windows (shared buffers are attributed in full to each window; the
    /// estimate feeds artifact accounting, not an allocator).
    pub fn estimated_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|ch| {
                let window = ch.offset..ch.offset + ch.len;
                let values = match &*ch.data {
                    ChunkData::Int { .. } | ChunkData::Float { .. } => 8 * ch.len,
                    ChunkData::Bool { .. } => ch.len,
                    ChunkData::Str { values, .. } => values[window.clone()]
                        .iter()
                        .map(|s| s.len() + std::mem::size_of::<String>())
                        .sum(),
                };
                let mask = if ch.data.validity().is_some() {
                    ch.len
                } else {
                    0
                };
                values + mask
            })
            .sum()
    }
}

fn cell_at(data: &ChunkData, i: usize) -> Cell {
    if !data.is_valid(i) {
        return Cell::Null;
    }
    match data {
        ChunkData::Int { values, .. } => Cell::Int(values[i]),
        ChunkData::Float { values, .. } => Cell::Float(values[i]),
        ChunkData::Str { values, .. } => Cell::Str(values[i].clone()),
        ChunkData::Bool { values, .. } => Cell::Bool(values[i]),
    }
}

fn get_i64_at(data: &ChunkData, i: usize) -> Option<i64> {
    if !data.is_valid(i) {
        return None;
    }
    match data {
        ChunkData::Int { values, .. } => Some(values[i]),
        ChunkData::Bool { values, .. } => Some(i64::from(values[i])),
        _ => None,
    }
}

fn get_f64_at(data: &ChunkData, i: usize) -> Option<f64> {
    if !data.is_valid(i) {
        return None;
    }
    match data {
        ChunkData::Int { values, .. } => Some(values[i] as f64),
        ChunkData::Float { values, .. } => Some(values[i]),
        _ => None,
    }
}

fn get_str_at(data: &ChunkData, i: usize) -> Option<&str> {
    if !data.is_valid(i) {
        return None;
    }
    match data {
        ChunkData::Str { values, .. } => Some(&values[i]),
        _ => None,
    }
}

/// Sequential row accessor that remembers the last chunk it touched, making
/// monotonic scans (the morsel pattern) amortized O(1) per row regardless of
/// how many chunks back the column.
pub struct Cursor<'a> {
    col: &'a Column,
    ci: usize,
}

impl<'a> Cursor<'a> {
    fn locate(&mut self, row: usize) -> (&'a ChunkData, usize) {
        let col = self.col;
        debug_assert!(row < col.len, "row {row} out of bounds (len {})", col.len);
        if col.chunks.len() > 1 {
            while row >= col.starts[self.ci] + col.chunks[self.ci].len {
                self.ci += 1;
            }
            while row < col.starts[self.ci] {
                self.ci -= 1;
            }
        }
        let ch = &col.chunks[self.ci];
        (&ch.data, ch.offset + row - col.starts[self.ci])
    }

    pub fn is_valid(&mut self, row: usize) -> bool {
        let (d, li) = self.locate(row);
        d.is_valid(li)
    }

    pub fn get_i64(&mut self, row: usize) -> Option<i64> {
        let (d, li) = self.locate(row);
        get_i64_at(d, li)
    }

    pub fn get_f64(&mut self, row: usize) -> Option<f64> {
        let (d, li) = self.locate(row);
        get_f64_at(d, li)
    }

    pub fn get_str(&mut self, row: usize) -> Option<&'a str> {
        let (d, li) = self.locate(row);
        get_str_at(d, li)
    }

    pub fn cell(&mut self, row: usize) -> Cell {
        let (d, li) = self.locate(row);
        cell_at(d, li)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction_and_access() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get_i64(1), Some(2));
        assert_eq!(c.get_f64(2), Some(3.0));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn nullable_columns() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3)]);
        assert_eq!(c.null_count(), 1);
        assert!(!c.is_valid(1));
        assert_eq!(c.get_i64(1), None);
        assert_eq!(c.cell(1), Cell::Null);
        assert_eq!(c.cell(0), Cell::Int(1));
    }

    #[test]
    fn all_some_collapses_mask() {
        let c = Column::from_opt_i64(vec![Some(1), Some(2)]);
        assert_eq!(c.null_count(), 0);
        // The wire format keeps the flat pre-chunked layout, so a collapsed
        // mask is visible there.
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"validity\":null"), "{json}");
    }

    #[test]
    fn serde_round_trips_across_chunkings() {
        let a = Column::from_opt_i64(vec![Some(1), None]);
        let b = Column::from_i64(vec![7]);
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.num_chunks(), 2);
        let json = serde_json::to_string(&c).unwrap();
        let back: Column = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.num_chunks(), 1, "deserializes dense");
    }

    #[test]
    fn masks_treat_null_as_false() {
        let c = Column::from_opt_f64(vec![Some(1.0), None, Some(10.0)]);
        assert_eq!(c.mask_f64(|v| v > 0.5), vec![true, false, true]);
    }

    #[test]
    fn filter_preserves_validity() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3), None]);
        let filtered = c.filter(&[true, true, false, true]);
        assert_eq!(filtered.len(), 3);
        assert_eq!(filtered.get_i64(0), Some(1));
        assert_eq!(filtered.get_i64(1), None);
        assert_eq!(filtered.get_i64(2), None);
    }

    #[test]
    fn take_reorders() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "c".into()]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.str_values(), &["c", "a", "a"]);
    }

    #[test]
    fn string_masks() {
        let c = Column::from_str(vec!["COMPLETED".into(), "FAILED".into()]);
        assert_eq!(c.mask_str(|s| s == "FAILED"), vec![false, true]);
        assert_eq!(c.get_str(0), Some("COMPLETED"));
    }

    #[test]
    #[should_panic(expected = "expected int column")]
    fn wrong_dtype_access_panics() {
        Column::from_f64(vec![1.0]).i64_values();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(2.5), "2.5");
        assert_eq!(format_float(0.1 + 0.2), "0.30000000000000004");
    }

    #[test]
    fn bool_widens_to_int() {
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.get_i64(0), Some(1));
        assert_eq!(c.get_i64(1), Some(0));
    }

    #[test]
    fn from_opt_str_marks_nulls() {
        let c = Column::from_opt_str(vec![Some("x".into()), None]);
        assert_eq!(c.get_str(0), Some("x"));
        assert_eq!(c.get_str(1), None);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn concat_is_zero_copy_and_logically_equal() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_opt_i64(vec![None, Some(4)]);
        crate::copycount::reset();
        let c = Column::concat(&[&a, &b]);
        assert_eq!(crate::copycount::rows_copied(), 0, "concat copies no rows");
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_chunks(), 2);
        assert_eq!(c.get_i64(1), Some(2));
        assert_eq!(c.get_i64(2), None);
        assert_eq!(c.get_i64(3), Some(4));
        assert_eq!(c.null_count(), 1);
        assert_eq!(
            c,
            Column::from_opt_i64(vec![Some(1), Some(2), None, Some(4)])
        );
    }

    #[test]
    fn slice_is_zero_copy_across_chunk_boundaries() {
        let a = Column::from_i64(vec![1, 2, 3]);
        let b = Column::from_i64(vec![4, 5, 6]);
        let c = Column::concat(&[&a, &b]);
        crate::copycount::reset();
        let s = c.slice(2, 3);
        assert_eq!(crate::copycount::rows_copied(), 0, "slice copies no rows");
        assert_eq!(s, Column::from_i64(vec![3, 4, 5]));
        assert_eq!(s.num_chunks(), 2, "window straddles the seam");
        let empty = c.slice(6, 0);
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.dtype(), DType::Int);
    }

    #[test]
    fn materializing_ops_report_copies() {
        let c = Column::from_i64(vec![1, 2, 3, 4]);
        crate::copycount::reset();
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(crate::copycount::rows_copied(), 2);
        assert_eq!(f, Column::from_i64(vec![1, 3]));
        crate::copycount::reset();
        let t = c.take(&[3, 0]);
        assert_eq!(crate::copycount::rows_copied(), 2);
        assert_eq!(t, Column::from_i64(vec![4, 1]));
        crate::copycount::reset();
        let dense = Column::concat(&[&c, &c]).compact();
        assert_eq!(crate::copycount::rows_copied(), 8);
        assert_eq!(dense.num_chunks(), 1);
        crate::copycount::reset();
    }

    #[test]
    fn cursor_scans_multi_chunk_columns() {
        let a = Column::from_str(vec!["a".into(), "b".into()]);
        let b = Column::from_opt_str(vec![None, Some("d".into())]);
        let c = Column::concat(&[&a, &b]);
        let mut cur = c.cursor();
        let got: Vec<Option<&str>> = (0..c.len()).map(|i| cur.get_str(i)).collect();
        assert_eq!(got, vec![Some("a"), Some("b"), None, Some("d")]);
        // Backward moves work too (take-style random access).
        assert_eq!(cur.get_str(0), Some("a"));
        assert_eq!(cur.get_str(3), Some("d"));
    }

    #[test]
    fn filter_and_take_work_across_chunks() {
        let a = Column::from_i64(vec![10, 20]);
        let b = Column::from_i64(vec![30, 40]);
        let c = Column::concat(&[&a, &b]);
        assert_eq!(
            c.filter(&[true, false, false, true]),
            Column::from_i64(vec![10, 40])
        );
        assert_eq!(
            c.take(&[3, 2, 1, 0]),
            Column::from_i64(vec![40, 30, 20, 10])
        );
    }

    #[test]
    fn estimated_bytes_tracks_windows() {
        let c = Column::from_i64(vec![1, 2, 3, 4]);
        assert_eq!(c.estimated_bytes(), 32);
        assert_eq!(c.slice(0, 2).estimated_bytes(), 16);
        let s = Column::from_str(vec!["abc".into()]);
        assert_eq!(s.estimated_bytes(), 3 + std::mem::size_of::<String>());
    }
}
