//! Descriptive statistics over numeric slices.
//!
//! These feed two consumers: the analytics stages (summary tables) and the
//! chart digests the rule-based analyst interprets (trend, spread, outliers).

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance; `None` on empty input.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation.
pub fn stddev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Interpolated quantile of an already sorted slice, `q` in [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Interpolated quantile of an unsorted slice (allocates a sorted copy).
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(quantile_sorted(&v, q))
}

/// Median shortcut.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Pearson correlation coefficient; `None` if degenerate.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Least-squares line `y = a + b·x`; returns `(intercept, slope)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    Some((my - slope * mx, slope))
}

/// A histogram over equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Inclusive-exclusive edges of bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        let w = self.bin_width();
        (self.min + w * i as f64, self.min + w * (i + 1) as f64)
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Build a histogram with `bins` equal-width bins; non-finite values skipped.
pub fn histogram(values: &[f64], bins: usize) -> Option<Histogram> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() || bins == 0 {
        return None;
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut counts = vec![0u64; bins];
    if min == max {
        counts[0] = finite.len() as u64;
        return Some(Histogram { min, max, counts });
    }
    let width = (max - min) / bins as f64;
    for v in finite {
        let mut idx = ((v - min) / width) as usize;
        if idx >= bins {
            idx = bins - 1; // v == max lands in the last bin
        }
        counts[idx] += 1;
    }
    Some(Histogram { min, max, counts })
}

/// Values beyond `k` interquartile ranges from the quartiles (Tukey fences).
pub fn outliers(values: &[f64], k: f64) -> Vec<f64> {
    if values.len() < 4 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q1 = quantile_sorted(&sorted, 0.25);
    let q3 = quantile_sorted(&sorted, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    values
        .iter()
        .copied()
        .filter(|&v| v < lo || v > hi)
        .collect()
}

/// Five-number summary `(min, q1, median, q3, max)`.
pub fn five_number(values: &[f64]) -> Option<(f64, f64, f64, f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some((
        sorted[0],
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
        sorted[sorted.len() - 1],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(stddev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn pearson_detects_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), None);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&x, &y).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let v = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 9.9, 10.0];
        let h = histogram(&v, 5).unwrap();
        assert_eq!(h.total(), 8);
        assert_eq!(h.counts.len(), 5);
        // max value lands in last bin.
        assert!(h.counts[4] >= 2);
        let (lo, hi) = h.edges(0);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 2.0);
    }

    #[test]
    fn histogram_degenerate_cases() {
        assert!(histogram(&[], 5).is_none());
        assert!(histogram(&[1.0], 0).is_none());
        let h = histogram(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.counts[0], 3);
        let h = histogram(&[1.0, f64::NAN, 2.0], 2).unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn tukey_outliers() {
        let mut v: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        v.push(1000.0);
        let out = outliers(&v, 1.5);
        assert_eq!(out, vec![1000.0]);
        assert!(outliers(&[1.0, 2.0], 1.5).is_empty());
    }

    #[test]
    fn five_number_summary() {
        let (min, q1, med, q3, max) = five_number(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q25 = quantile_sorted(&v, 0.25);
            let q50 = quantile_sorted(&v, 0.5);
            let q75 = quantile_sorted(&v, 0.75);
            prop_assert!(q25 <= q50 && q50 <= q75);
            prop_assert!(v[0] <= q25 && q75 <= v[v.len() - 1]);
        }

        #[test]
        fn prop_mean_within_bounds(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let m = mean(&v).unwrap();
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
        }

        #[test]
        fn prop_histogram_conserves_count(v in proptest::collection::vec(-1e3f64..1e3, 1..200), bins in 1usize..20) {
            let h = histogram(&v, bins).unwrap();
            prop_assert_eq!(h.total(), v.len() as u64);
        }
    }
}
