//! Static cost & cardinality analysis over the logical plan IR — the frame
//! half of the SF08xx lint family.
//!
//! [`analyze`] abstractly interprets an optimized [`LazyPlan`], propagating a
//! row-count interval through every operator. The abstract domain is
//! [`CardPoly`], a saturating polynomial in `n` (the total rows the plan's
//! scans read), so bounds stay symbolic until a concrete source size exists:
//! the runtime soundness cross-check evaluates them at the observed
//! scanned-row tally, while the lint-time `--mem-budget` peak computation
//! evaluates them at an assumed source size.
//!
//! Per-operator transfer rules (all bounds inclusive):
//!
//! * **Scan** — `[n, n]` for the only scan of a single-source plan with no
//!   pushed predicate; `[0, n]` otherwise (a pushed predicate or sibling
//!   scans can take any share of `n`).
//! * **Filter** — `[0, hi]`: may drop everything, never adds rows.
//! * **Project / WithColumn / Sort** — row-preserving.
//! * **Head k** — upper bound clamps to `k`; the lower bound keeps only its
//!   provably-constant part (`min(lo.konst, k)`).
//! * **GroupBy** — at most one group per input row; at least one group when
//!   the input is provably nonempty. The output becomes *key-unique*.
//! * **Join** — the widening point. When one side is unique on the join key
//!   (it descends from a group-by over that key), output rows are bounded by
//!   the other side (plus the left side for left joins). When neither side
//!   is key-unique the product `hi_l · hi_r` applies — degree-capped at 2,
//!   beyond which the bound widens to `∞` — and the join is reported for
//!   SF0804.
//!
//! The walk also collects the canonical fingerprints of materializing
//! subplans (group-bys, joins) for the SF0801 cross-stage duplicate check,
//! and filters that survive optimization above a materialization point even
//! though they only touch scan columns (SF0805).

use crate::expr::Expr;
use crate::plan::{subplan_fingerprint, LazyPlan, Plan};
use schedflow_dataflow::contract::ColType;
use schedflow_dataflow::report::{CardPoly, PlanEstimate};
use std::collections::BTreeSet;

/// Estimated width of one column value, by contract type: strings dominate
/// at 16 bytes (pointer + small-string payload), everything else is a
/// machine word.
fn col_width(ty: ColType) -> u64 {
    match ty {
        ColType::Str => 16,
        _ => 8,
    }
}

/// Result of abstractly interpreting one plan.
#[derive(Debug, Clone)]
pub struct CostAnalysis {
    /// Row interval and byte widths — the per-task [`PlanEstimate`] the
    /// pipeline attaches for the estimated-vs-actual run columns.
    pub estimate: PlanEstimate,
    /// Canonical fingerprint and description of every materializing subplan
    /// (group-by, join) — SF0801 flags fingerprints shared across tasks.
    pub expensive_subplans: Vec<(u64, String)>,
    /// Joins where neither input is provably unique on the join key, with a
    /// description of the quadratic/unbounded growth (SF0804).
    pub unbounded_joins: Vec<String>,
    /// Filters the optimizer left above a materialization even though their
    /// predicates only read scan columns (SF0805); rendered predicates.
    pub post_mat_filters: Vec<String>,
    /// Output column names when statically known (`None` when the plan ends
    /// in a bare scan whose source schema is unknown).
    pub output_columns: Option<Vec<String>>,
}

/// Abstract state flowing up the plan tree.
struct NodeFacts {
    lo: CardPoly,
    hi: CardPoly,
    /// Key sets the rows are provably unique on (from a group-by below).
    unique_on: Option<BTreeSet<String>>,
    /// Output columns as `(name, width)` when statically known.
    cols: Option<Vec<(String, u64)>>,
    /// Column names derived below this node (with-column outputs, group-by
    /// aggregates) — a filter on any of these is inherently post-
    /// materialization and exempt from SF0805.
    derived: BTreeSet<String>,
    /// Whether a materializing operator (group-by, join, with-column)
    /// exists below this node.
    materialized: bool,
}

struct Walker {
    single_source: bool,
    expensive: Vec<(u64, String)>,
    unbounded_joins: Vec<String>,
    post_mat_filters: Vec<String>,
}

/// One-line description of a materializing node, for diagnostics.
fn describe(plan: &Plan) -> String {
    match plan {
        Plan::GroupBy { keys, aggs, .. } => {
            let aggs: Vec<&str> = aggs.iter().map(|(n, _)| n.as_str()).collect();
            format!("group_by({}) -> [{}]", keys.join(", "), aggs.join(", "))
        }
        Plan::Join { key, kind, .. } => format!("join on `{key}` ({kind:?})"),
        _ => "subplan".to_owned(),
    }
}

impl Walker {
    fn walk(&mut self, plan: &Plan) -> NodeFacts {
        match plan {
            Plan::Scan {
                projection,
                predicate,
                ..
            } => {
                let exact = self.single_source && predicate.is_none();
                NodeFacts {
                    lo: if exact {
                        CardPoly::n()
                    } else {
                        CardPoly::zero()
                    },
                    hi: CardPoly::n(),
                    unique_on: None,
                    cols: projection
                        .as_ref()
                        .map(|p| p.iter().map(|name| (name.clone(), 8)).collect()),
                    derived: BTreeSet::new(),
                    materialized: false,
                }
            }
            Plan::Filter { input, predicate } => {
                let f = self.walk(input);
                // A filter still above a materialization whose predicate
                // only reads scan columns could have run before it (SF0805).
                if f.materialized && !refs_any(predicate, &f.derived) {
                    self.post_mat_filters.push(predicate.render());
                }
                NodeFacts {
                    lo: CardPoly::zero(),
                    ..f
                }
            }
            Plan::Project { input, columns } => {
                let f = self.walk(input);
                let names: BTreeSet<&str> = columns.iter().map(|c| c.name.as_str()).collect();
                NodeFacts {
                    unique_on: f
                        .unique_on
                        .filter(|keys| keys.iter().all(|k| names.contains(k.as_str()))),
                    cols: Some(
                        columns
                            .iter()
                            .map(|c| (c.name.clone(), col_width(c.ty)))
                            .collect(),
                    ),
                    ..f
                }
            }
            Plan::WithColumn { input, name, .. } => {
                let mut f = self.walk(input);
                if let Some(cols) = &mut f.cols {
                    cols.retain(|(n, _)| n != name);
                    cols.push((name.clone(), 8));
                }
                f.derived.insert(name.clone());
                f.materialized = true;
                f
            }
            Plan::GroupBy { input, keys, aggs } => {
                let f = self.walk(input);
                self.expensive
                    .push((subplan_fingerprint(plan), describe(plan)));
                let mut cols: Vec<(String, u64)> = keys.iter().map(|k| (k.clone(), 16)).collect();
                cols.extend(aggs.iter().map(|(n, _)| (n.clone(), 8)));
                NodeFacts {
                    lo: CardPoly::konst(u64::from(f.lo.konst >= 1)),
                    hi: f.hi,
                    unique_on: Some(keys.iter().cloned().collect()),
                    cols: Some(cols),
                    derived: {
                        let mut d = f.derived;
                        d.extend(aggs.iter().map(|(n, _)| n.clone()));
                        d
                    },
                    materialized: true,
                }
            }
            Plan::Sort { input, .. } => self.walk(input),
            Plan::Head { input, n } => {
                let f = self.walk(input);
                let k = *n as u64;
                NodeFacts {
                    lo: CardPoly::konst(f.lo.konst.min(k)),
                    hi: if f.hi.linear == 0 && f.hi.quad == 0 && !f.hi.unbounded {
                        CardPoly::konst(f.hi.konst.min(k))
                    } else {
                        CardPoly::konst(k)
                    },
                    ..f
                }
            }
            Plan::Join {
                left,
                right,
                key,
                kind,
            } => {
                let l = self.walk(left);
                let r = self.walk(right);
                self.expensive
                    .push((subplan_fingerprint(plan), describe(plan)));
                // Unique on a key set S proves unique on the join key only
                // when S ⊆ {key}: a (user, day) group-by is NOT unique on
                // `user` alone, so the linear bound would be unsound there.
                let unique_on_key = |f: &NodeFacts| {
                    f.unique_on
                        .as_ref()
                        .is_some_and(|keys| keys.iter().all(|k| k == key))
                };
                let left_unique = unique_on_key(&l);
                let right_unique = unique_on_key(&r);
                let is_left_join = matches!(kind, crate::join::JoinKind::Left);
                let (lo, hi) = if right_unique {
                    // Each left row matches at most one right row.
                    let lo = if is_left_join { l.lo } else { CardPoly::zero() };
                    (lo, l.hi)
                } else if left_unique {
                    // Each right row matches at most one left row; a left
                    // join additionally keeps unmatched left rows.
                    if is_left_join {
                        (l.lo, l.hi.add(&r.hi))
                    } else {
                        (CardPoly::zero(), r.hi)
                    }
                } else {
                    self.unbounded_joins.push(format!(
                        "join on `{key}`: neither side is unique on the key \
                         (bound {} × {})",
                        l.hi.render(),
                        r.hi.render()
                    ));
                    let lo = if is_left_join { l.lo } else { CardPoly::zero() };
                    (lo, l.hi.mul(&r.hi))
                };
                let cols = match (l.cols, r.cols) {
                    (Some(mut lc), Some(rc)) => {
                        for (n, w) in rc {
                            if n != *key && !lc.iter().any(|(e, _)| *e == n) {
                                lc.push((n, w));
                            }
                        }
                        Some(lc)
                    }
                    _ => None,
                };
                NodeFacts {
                    lo,
                    hi,
                    unique_on: (left_unique && right_unique)
                        .then(|| [key.clone()].into_iter().collect()),
                    cols,
                    derived: {
                        let mut d = l.derived;
                        d.extend(r.derived);
                        d
                    },
                    materialized: true,
                }
            }
        }
    }
}

/// Does the expression reference any of the given column names?
fn refs_any(e: &Expr, names: &BTreeSet<String>) -> bool {
    let mut refs = Vec::new();
    e.col_refs(&mut refs);
    refs.iter().any(|r| names.contains(&r.name))
}

/// Abstractly interpret a plan: row-count interval, byte widths, and the
/// SF0801/SF0804/SF0805 evidence. Operates on the *optimized* tree, so the
/// estimate describes the computation that will actually run.
pub fn analyze(plan: &LazyPlan) -> CostAnalysis {
    let optimized = plan.optimized();
    let mut walker = Walker {
        single_source: plan.source_count() == 1,
        expensive: Vec::new(),
        unbounded_joins: Vec::new(),
        post_mat_filters: Vec::new(),
    };
    let facts = walker.walk(&optimized);

    // Byte widths from the derived input contracts: what one scanned row
    // costs after projection pruning, and what one output row costs.
    let mut scan_row_bytes = 0u64;
    let mut widths: Vec<(String, u64)> = Vec::new();
    for schema in plan.required_schemas() {
        for spec in schema.columns() {
            let w = col_width(spec.ty);
            scan_row_bytes += w;
            widths.push((spec.name.clone(), w));
        }
    }
    let out_row_bytes = match &facts.cols {
        Some(cols) => cols
            .iter()
            .map(|(name, w)| {
                widths
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(*w, |(_, w)| *w)
            })
            .sum::<u64>()
            .max(8),
        None => scan_row_bytes.max(8),
    };

    CostAnalysis {
        estimate: PlanEstimate {
            rows_lo: facts.lo,
            rows_hi: facts.hi,
            out_row_bytes,
            scan_row_bytes: scan_row_bytes.max(8),
        },
        expensive_subplans: walker.expensive,
        unbounded_joins: walker.unbounded_joins,
        post_mat_filters: walker.post_mat_filters,
        output_columns: facts
            .cols
            .map(|cols| cols.into_iter().map(|(n, _)| n).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col_num, col_str, lit_i64};
    use crate::groupby::Agg;
    use crate::join::JoinKind;
    use crate::{Column, Frame};

    #[test]
    fn bare_scan_is_exact() {
        let a = analyze(&LazyPlan::scan());
        assert_eq!(a.estimate.rows_interval(100), (100, 100));
        assert!(a.expensive_subplans.is_empty());
    }

    #[test]
    fn filter_drops_lower_bound() {
        let a = analyze(&LazyPlan::scan().filter(col_num("x").gt(lit_i64(3))));
        assert_eq!(a.estimate.rows_interval(100), (0, 100));
    }

    #[test]
    fn projection_preserves_rows_and_narrows_output() {
        let a = analyze(
            &LazyPlan::scan()
                .filter(col_num("x").is_not_null())
                .project(&[col_num("x")]),
        );
        assert_eq!(a.estimate.rows_interval(50), (0, 50));
        assert_eq!(a.output_columns.as_deref(), Some(&["x".to_owned()][..]));
        assert_eq!(a.estimate.out_row_bytes, 8);
    }

    #[test]
    fn head_clamps_upper_bound() {
        let a = analyze(&LazyPlan::scan().head(10));
        assert_eq!(a.estimate.rows_interval(100), (0, 10));
        assert_eq!(a.estimate.rows_interval(4), (0, 10));
    }

    #[test]
    fn group_by_bounds_and_fingerprints() {
        let plan = LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)]);
        let a = analyze(&plan);
        // At most one group per input row. The lower bound stays 0: the
        // symbolic domain cannot prove the input nonempty (n may be 0), and
        // an empty scan really does produce zero groups.
        assert_eq!(a.estimate.rows_interval(100), (0, 100));
        assert_eq!(a.expensive_subplans.len(), 1);
        assert_eq!(
            a.output_columns.as_deref(),
            Some(&["user".to_owned(), "n".to_owned()][..])
        );
    }

    #[test]
    fn key_unique_join_is_linearly_bounded() {
        let per_user = || LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)]);
        let a = analyze(&per_user().join(per_user(), "user", JoinKind::Inner));
        assert!(a.unbounded_joins.is_empty());
        let (lo, hi) = a.estimate.rows_interval(100);
        assert_eq!(lo, 0);
        assert!(hi <= 100);
    }

    #[test]
    fn multikey_group_by_is_not_unique_on_a_single_join_key() {
        // group_by(user, day) is unique on the *pair*; joining on `user`
        // alone must widen to the product bound, not the linear one — four
        // (user, day) groups for one user each match every right row.
        let left = LazyPlan::scan().group_by(&["user", "day"], &[("n", Agg::Count)]);
        let plan = left.join(LazyPlan::scan(), "user", JoinKind::Inner);
        let a = analyze(&plan);
        assert_eq!(a.unbounded_joins.len(), 1);

        let lf = Frame::new()
            .with("user", Column::from_str(vec!["a".into(); 4]))
            .with("day", Column::from_i64(vec![1, 2, 3, 4]));
        let rf = Frame::new().with("user", Column::from_str(vec!["a".into(); 4]));
        let out = plan.execute_multi(&[&lf, &rf]).expect("join executes");
        let n = (lf.height() + rf.height()) as u64;
        assert_eq!(out.height(), 16);
        assert!(
            a.estimate.contains_rows(n, out.height() as u64),
            "actual {} outside predicted {:?}",
            out.height(),
            a.estimate.rows_interval(n)
        );
    }

    #[test]
    fn non_key_join_widens_and_reports_sf0804_evidence() {
        let a = analyze(&LazyPlan::scan().join(LazyPlan::scan(), "user", JoinKind::Inner));
        assert_eq!(a.unbounded_joins.len(), 1);
        let (_, hi) = a.estimate.rows_interval(100);
        assert_eq!(hi, 10_000);
    }

    #[test]
    fn filter_above_group_by_on_scan_column_is_post_materialization() {
        let plan = LazyPlan::scan()
            .group_by(&["user"], &[("n", Agg::Count)])
            .filter(col_str("user").is_not_null());
        let a = analyze(&plan);
        assert_eq!(a.post_mat_filters.len(), 1);
    }

    #[test]
    fn filter_on_derived_column_is_inherent_not_flagged() {
        let plan = LazyPlan::scan()
            .group_by(&["user"], &[("n", Agg::Count)])
            .filter(col_num("n").gt(lit_i64(5)));
        let a = analyze(&plan);
        assert!(a.post_mat_filters.is_empty());
    }

    #[test]
    fn pushed_filters_are_not_post_materialization() {
        // The optimizer pushes this predicate into the scan, so nothing
        // survives above a materializer.
        let plan = LazyPlan::scan()
            .filter(col_num("x").gt(lit_i64(1)))
            .group_by(&["user"], &[("n", Agg::Count)]);
        let a = analyze(&plan);
        assert!(a.post_mat_filters.is_empty());
    }
}
