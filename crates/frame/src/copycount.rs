//! Row-copy accounting: the test hook behind the zero-copy contract.
//!
//! Every frame operation that materializes rows into fresh buffers
//! (`filter`, `take`, `compact`, view materialization) reports the number of
//! rows it copied to a thread-local counter. Operations that are required to
//! be zero-copy (`vstack`, `head`, `slice`, `select`, view construction)
//! report nothing, so a test can snapshot the counter, run the operation, and
//! assert the delta is zero.
//!
//! The counter is thread-local on purpose: copies performed by parallel
//! kernel workers are not attributed to the coordinating thread, and
//! concurrently running tests cannot pollute each other's deltas.

use std::cell::Cell;

thread_local! {
    static ROWS_COPIED: Cell<u64> = const { Cell::new(0) };
}

/// Record `rows` materialized row copies on this thread.
pub(crate) fn add(rows: u64) {
    ROWS_COPIED.with(|c| c.set(c.get() + rows));
}

/// Rows copied on this thread since the last [`reset`].
pub fn rows_copied() -> u64 {
    ROWS_COPIED.with(Cell::get)
}

/// Reset this thread's counter to zero.
pub fn reset() {
    ROWS_COPIED.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_per_thread() {
        reset();
        add(3);
        assert_eq!(rows_copied(), 3);
        std::thread::spawn(|| {
            assert_eq!(rows_copied(), 0, "fresh thread starts at zero");
            add(100);
        })
        .join()
        .unwrap();
        assert_eq!(rows_copied(), 3, "other threads do not leak in");
        reset();
        assert_eq!(rows_copied(), 0);
    }
}
