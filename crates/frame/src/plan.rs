//! Lazy logical plans with an optimizing query layer.
//!
//! A [`LazyPlan`] describes a frame computation — scans, filters,
//! projections, derived columns, group-bys, sorts, joins — as data, without
//! touching any rows. Before execution the optimizer rewrites the plan:
//!
//! * **filter fusion** — adjacent filters collapse into one conjunction;
//! * **predicate pushdown** — filters sink through projections and sorts
//!   into the scan, so rows are dropped at the source;
//! * **projection pruning** — scans narrow to the columns the plan actually
//!   consumes, so untouched columns are never gathered;
//! * **common-subplan elimination** — identical materializing subplans
//!   (group-bys, joins) execute once per run, keyed by fingerprint.
//!
//! Execution rides the zero-copy [`FrameView`] machinery: scan → filter →
//! sort → head compose as selection vectors over the source's shared
//! chunks, and an optimized plan materializes rows **at most once** (at a
//! group-by/join boundary or at the final gather, which copies only the
//! pruned column set).
//!
//! Because every column reference in a plan is typed ([`crate::expr`]), the
//! plan doubles as the stage's input contract: [`LazyPlan::required_schema`]
//! derives the `FrameSchema` a consumer must provide, replacing hand-written
//! requirement lists. A canonicalized plan also digests to a stable
//! [`LazyPlan::fingerprint`] (shared FNV-1a), which the dataflow layer folds
//! into task fingerprints so a changed computation invalidates caches.
//!
//! Each execution tallies a [`PlanStats`] delta (bytes scanned vs. eager,
//! rows in/out, pruned columns, pushdowns) into a thread-local
//! ([`crate::planstats`]) that pipeline tasks snapshot into run reports.

use crate::column::{Column, DType};
use crate::expr::{ColRef, Evaluator, Expr, Value};
use crate::frame::{Frame, FrameError};
use crate::groupby::{group_by, Agg};
use crate::join::{join, JoinKind};
use crate::planstats;
use crate::view::{FrameView, Selection};
use schedflow_dataflow::contract::{ColType, ColumnSpec, FrameSchema};
use schedflow_dataflow::fnv::Fnv1a;
use schedflow_dataflow::report::PlanStats;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// A logical plan node. Build via [`LazyPlan`]; the enum is public so
/// tooling (`schedflow explain`) can walk optimized trees.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Read input frame `source`. `projection`/`predicate` start empty and
    /// are filled in by the optimizer (pruning, pushdown).
    Scan {
        source: usize,
        projection: Option<Vec<String>>,
        predicate: Option<Expr>,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        columns: Vec<ColRef>,
    },
    WithColumn {
        input: Box<Plan>,
        name: String,
        expr: Expr,
    },
    GroupBy {
        input: Box<Plan>,
        keys: Vec<String>,
        aggs: Vec<(String, Agg)>,
    },
    Sort {
        input: Box<Plan>,
        by: String,
        descending: bool,
    },
    Head {
        input: Box<Plan>,
        n: usize,
    },
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        key: String,
        kind: JoinKind,
    },
}

/// Builder for single- and multi-source logical plans.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyPlan {
    root: Plan,
    sources: usize,
}

impl LazyPlan {
    /// Start a plan over one input frame (source 0).
    pub fn scan() -> Self {
        LazyPlan {
            root: Plan::Scan {
                source: 0,
                projection: None,
                predicate: None,
            },
            sources: 1,
        }
    }

    /// Keep rows where `predicate` is definitely true (Kleene).
    pub fn filter(self, predicate: Expr) -> Self {
        LazyPlan {
            root: Plan::Filter {
                input: Box::new(self.root),
                predicate,
            },
            sources: self.sources,
        }
    }

    /// Narrow to the given typed column references. Every expression must be
    /// a bare column reference (`col_*`); anything else is a builder bug.
    pub fn project(self, columns: &[Expr]) -> Self {
        let columns = columns
            .iter()
            .map(|e| match e {
                Expr::Col(c) => c.clone(),
                other => panic!("project() takes column refs, got {}", other.render()),
            })
            .collect();
        LazyPlan {
            root: Plan::Project {
                input: Box::new(self.root),
                columns,
            },
            sources: self.sources,
        }
    }

    /// Append (or replace) a computed column.
    pub fn with_column(self, name: impl Into<String>, expr: Expr) -> Self {
        LazyPlan {
            root: Plan::WithColumn {
                input: Box::new(self.root),
                name: name.into(),
                expr,
            },
            sources: self.sources,
        }
    }

    /// Hash-aggregate over `keys`.
    pub fn group_by(self, keys: &[&str], aggs: &[(&str, Agg)]) -> Self {
        LazyPlan {
            root: Plan::GroupBy {
                input: Box::new(self.root),
                keys: keys.iter().map(|k| (*k).to_owned()).collect(),
                aggs: aggs
                    .iter()
                    .map(|(n, a)| ((*n).to_owned(), a.clone()))
                    .collect(),
            },
            sources: self.sources,
        }
    }

    /// Stable sort by one column, nulls last.
    pub fn sort(self, by: impl Into<String>, descending: bool) -> Self {
        LazyPlan {
            root: Plan::Sort {
                input: Box::new(self.root),
                by: by.into(),
                descending,
            },
            sources: self.sources,
        }
    }

    /// First `n` rows.
    pub fn head(self, n: usize) -> Self {
        LazyPlan {
            root: Plan::Head {
                input: Box::new(self.root),
                n,
            },
            sources: self.sources,
        }
    }

    /// Join with another plan on `key`; the right plan's sources are
    /// renumbered to follow this plan's (execute with
    /// [`LazyPlan::execute_multi`]).
    pub fn join(self, right: LazyPlan, key: impl Into<String>, kind: JoinKind) -> Self {
        let shifted = shift_sources(right.root, self.sources);
        LazyPlan {
            root: Plan::Join {
                left: Box::new(self.root),
                right: Box::new(shifted),
                key: key.into(),
                kind,
            },
            sources: self.sources + right.sources,
        }
    }

    /// Substitute `inner` for this single-source plan's scan — the composed
    /// plan reads what `inner` produces. Used by pipeline stages that chain
    /// a stage plan onto a curation plan for contract derivation.
    pub fn compose(self, inner: LazyPlan) -> Self {
        assert_eq!(
            self.sources, 1,
            "compose() requires a single-source outer plan"
        );
        LazyPlan {
            root: substitute_scan(self.root, &inner.root),
            sources: inner.sources,
        }
    }

    /// Number of input frames this plan reads.
    pub fn source_count(&self) -> usize {
        self.sources
    }

    /// The unoptimized logical tree.
    pub fn logical(&self) -> &Plan {
        &self.root
    }

    /// The optimized tree (fused, pushed-down, pruned).
    pub fn optimized(&self) -> Plan {
        optimize(&self.root).0
    }

    /// Stable fingerprint of the canonicalized optimized plan. Insensitive
    /// to optimization/canonicalization order and to commuted conjuncts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        fold_plan(&canonicalize(&self.optimized()), &mut h);
        h.finish()
    }

    /// Derive the input contract of source 0 from the plan's typed column
    /// references. Every derived requirement is nullable: plans are
    /// null-total (Kleene), so presence and dtype are the real contract.
    ///
    /// Panics if one column is consumed under conflicting types — that is a
    /// statically wrong plan, not a data condition.
    pub fn required_schema(&self) -> FrameSchema {
        self.required_schemas()
            .into_iter()
            .next()
            .unwrap_or_default()
    }

    /// Per-source derived input contracts (see [`LazyPlan::required_schema`]).
    pub fn required_schemas(&self) -> Vec<FrameSchema> {
        let mut reqs: Vec<Vec<(String, ColType)>> = vec![Vec::new(); self.sources];
        collect_requirements(&self.root, &mut reqs);
        reqs.into_iter()
            .map(|cols| {
                let mut schema = FrameSchema::new();
                for (name, ty) in cols {
                    schema = schema.with_spec(ColumnSpec::new(name, ty).nullable());
                }
                schema
            })
            .collect()
    }

    /// Execute against one source frame, materializing the result.
    pub fn execute(&self, frame: &Frame) -> Result<Frame, FrameError> {
        self.execute_multi(&[frame])
    }

    /// Execute against `frames` (one per source), materializing the result.
    pub fn execute_multi(&self, frames: &[&Frame]) -> Result<Frame, FrameError> {
        let (mut stats, out) = self.run(frames)?;
        let f = out_into_frame(out, &mut stats)?;
        stats.rows_out = f.height() as u64;
        planstats::record(&stats);
        Ok(f)
    }

    /// Execute against one source frame, returning the result *lazily*: a
    /// zero-copy [`FrameView`] over the source when no materializing node
    /// intervened, an owned frame otherwise. Stages that scan with cursors
    /// use this to keep the whole pipeline copy-free.
    pub fn execute_view<'a>(&self, frame: &'a Frame) -> Result<PlanOutput<'a>, FrameError> {
        let (mut stats, out) = self.run(&[frame])?;
        let output = match out {
            Out::View { view, cols } => PlanOutput::View {
                view,
                columns: cols,
            },
            Out::Owned(f) => PlanOutput::Owned(f),
        };
        stats.rows_out = output.height() as u64;
        planstats::record(&stats);
        Ok(output)
    }

    /// Execute the *unoptimized* logical plan, materializing every node —
    /// the pre-IR execution model. No pruning, no pushdown, no subplan
    /// cache: the scan copies the full source and each stage materializes
    /// its whole intermediate frame. Kept as the `bench_plan` baseline and
    /// as the equivalence oracle for the property suite; records nothing in
    /// the plan-stats tally.
    pub fn execute_eager(&self, frame: &Frame) -> Result<Frame, FrameError> {
        self.execute_eager_multi(&[frame])
    }

    /// Multi-source form of [`LazyPlan::execute_eager`].
    pub fn execute_eager_multi(&self, frames: &[&Frame]) -> Result<Frame, FrameError> {
        if frames.len() != self.sources {
            return Err(FrameError::Plan(format!(
                "plan reads {} source(s), got {}",
                self.sources,
                frames.len()
            )));
        }
        eager_exec(&self.root, frames)
    }

    fn run<'a>(&self, frames: &[&'a Frame]) -> Result<(PlanStats, Out<'a>), FrameError> {
        if frames.len() != self.sources {
            return Err(FrameError::Plan(format!(
                "plan reads {} source(s), got {}",
                self.sources,
                frames.len()
            )));
        }
        let (plan, counts) = optimize(&self.root);
        let mut stats = PlanStats {
            plans: 1,
            predicates_pushed: counts.predicates_pushed,
            filters_fused: counts.filters_fused,
            ..PlanStats::default()
        };
        let mut memo = HashMap::new();
        let out = exec(&plan, frames, &mut stats, &mut memo)?;
        Ok((stats, out))
    }

    /// Indented tree rendering of the unoptimized plan.
    pub fn explain(&self) -> String {
        render_plan(&self.root)
    }

    /// Indented tree rendering of the optimized plan.
    pub fn explain_optimized(&self) -> String {
        render_plan(&self.optimized())
    }

    /// Graphviz DOT rendering of the optimized plan.
    pub fn to_dot(&self) -> String {
        let mut s = String::from(
            "digraph plan {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        let mut next = 0usize;
        dot_node(&self.optimized(), &mut next, &mut s);
        s.push_str("}\n");
        s
    }
}

/// Result of [`LazyPlan::execute_view`].
pub enum PlanOutput<'a> {
    /// Zero-copy: a selection over the source frame, optionally narrowed to
    /// a column subset.
    View {
        view: FrameView<'a>,
        columns: Option<Vec<String>>,
    },
    /// The plan materialized (group-by, join, derived column).
    Owned(Frame),
}

impl PlanOutput<'_> {
    pub fn height(&self) -> usize {
        match self {
            PlanOutput::View { view, .. } => view.height(),
            PlanOutput::Owned(f) => f.height(),
        }
    }

    /// A view over the result (borrowing the output itself when owned).
    pub fn view(&self) -> FrameView<'_> {
        match self {
            PlanOutput::View { view, .. } => view.clone(),
            PlanOutput::Owned(f) => f.view(),
        }
    }

    /// Gather into an owned frame (column subset applied).
    pub fn materialize(&self) -> Result<Frame, FrameError> {
        match self {
            PlanOutput::View { view, columns } => materialize_projected(view, columns.as_deref()),
            PlanOutput::Owned(f) => Ok(f.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone, Copy)]
struct OptCounts {
    predicates_pushed: u64,
    filters_fused: u64,
}

fn optimize(plan: &Plan) -> (Plan, OptCounts) {
    let mut counts = OptCounts::default();
    let mut p = plan.clone();
    // Fuse + push to fixpoint (pushing through a sort can re-stack filters).
    loop {
        let (fused, nfused) = fuse_filters(p);
        let (pushed, npushed) = push_down(fused);
        counts.filters_fused += nfused;
        counts.predicates_pushed += npushed;
        if nfused == 0 && npushed == 0 {
            p = pushed;
            break;
        }
        p = pushed;
    }
    (prune(p, Req::All), counts)
}

fn fuse_filters(plan: Plan) -> (Plan, u64) {
    let mut n = 0;
    let p = map_children(plan, &mut |child| {
        let (c, m) = fuse_filters(child);
        n += m;
        c
    });
    match p {
        Plan::Filter { input, predicate } => match *input {
            Plan::Filter {
                input: inner,
                predicate: first,
            } => (
                Plan::Filter {
                    input: inner,
                    predicate: first.and(predicate),
                },
                n + 1,
            ),
            other => (
                Plan::Filter {
                    input: Box::new(other),
                    predicate,
                },
                n,
            ),
        },
        other => (other, n),
    }
}

fn push_down(plan: Plan) -> (Plan, u64) {
    let mut n = 0;
    let p = map_children(plan, &mut |child| {
        let (c, m) = push_down(child);
        n += m;
        c
    });
    match p {
        Plan::Filter { input, predicate } => match *input {
            // Sink into the scan: rows drop at the source.
            Plan::Scan {
                source,
                projection,
                predicate: scan_pred,
            } => {
                n += conjunct_count(&predicate);
                let predicate = match scan_pred {
                    Some(existing) => existing.and(predicate),
                    None => predicate,
                };
                (
                    Plan::Scan {
                        source,
                        projection,
                        predicate: Some(predicate),
                    },
                    n,
                )
            }
            // Filter and sort commute (both preserve relative order).
            Plan::Sort {
                input: sorted,
                by,
                descending,
            } => (
                Plan::Sort {
                    input: Box::new(Plan::Filter {
                        input: sorted,
                        predicate,
                    }),
                    by,
                    descending,
                },
                n + 1,
            ),
            // Through a projection only when the predicate survives it.
            Plan::Project {
                input: projected,
                columns,
            } if pred_cols_subset(&predicate, &columns) => (
                Plan::Project {
                    input: Box::new(Plan::Filter {
                        input: projected,
                        predicate,
                    }),
                    columns,
                },
                n + 1,
            ),
            other => (
                Plan::Filter {
                    input: Box::new(other),
                    predicate,
                },
                n,
            ),
        },
        other => (other, n),
    }
}

fn conjunct_count(e: &Expr) -> u64 {
    match e {
        Expr::And(a, b) => conjunct_count(a) + conjunct_count(b),
        _ => 1,
    }
}

fn pred_cols_subset(pred: &Expr, columns: &[ColRef]) -> bool {
    let mut refs = Vec::new();
    pred.col_refs(&mut refs);
    refs.iter()
        .all(|r| columns.iter().any(|c| c.name == r.name))
}

/// Which columns a parent requires of a node's output.
#[derive(Debug, Clone)]
enum Req {
    All,
    Cols(BTreeSet<String>),
}

impl Req {
    fn add_expr(&mut self, e: &Expr) {
        if let Req::Cols(set) = self {
            let mut refs = Vec::new();
            e.col_refs(&mut refs);
            for r in refs {
                set.insert(r.name.clone());
            }
        }
    }
}

fn prune(plan: Plan, req: Req) -> Plan {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => {
            let projection = match (&req, projection) {
                (Req::All, p) => p,
                (Req::Cols(set), _) => {
                    let mut need = set.clone();
                    if let Some(p) = &predicate {
                        let mut refs = Vec::new();
                        p.col_refs(&mut refs);
                        for r in refs {
                            need.insert(r.name.clone());
                        }
                    }
                    Some(need.into_iter().collect())
                }
            };
            Plan::Scan {
                source,
                projection,
                predicate,
            }
        }
        Plan::Filter { input, predicate } => {
            let mut child = req;
            child.add_expr(&predicate);
            Plan::Filter {
                input: Box::new(prune(*input, child)),
                predicate,
            }
        }
        Plan::Project { input, columns } => {
            // The projection closes the column set regardless of the parent.
            let set = columns.iter().map(|c| c.name.clone()).collect();
            Plan::Project {
                input: Box::new(prune(*input, Req::Cols(set))),
                columns,
            }
        }
        Plan::WithColumn { input, name, expr } => {
            let child = match req {
                Req::All => Req::All,
                Req::Cols(mut set) => {
                    set.remove(&name);
                    let mut r = Req::Cols(set);
                    r.add_expr(&expr);
                    r
                }
            };
            Plan::WithColumn {
                input: Box::new(prune(*input, child)),
                name,
                expr,
            }
        }
        Plan::GroupBy { input, keys, aggs } => {
            let mut set: BTreeSet<String> = keys.iter().cloned().collect();
            for (_, a) in &aggs {
                if let Some(src) = agg_source(a) {
                    set.insert(src.to_owned());
                }
            }
            Plan::GroupBy {
                input: Box::new(prune(*input, Req::Cols(set))),
                keys,
                aggs,
            }
        }
        Plan::Sort {
            input,
            by,
            descending,
        } => {
            let child = match req {
                Req::All => Req::All,
                Req::Cols(mut set) => {
                    set.insert(by.clone());
                    Req::Cols(set)
                }
            };
            Plan::Sort {
                input: Box::new(prune(*input, child)),
                by,
                descending,
            }
        }
        Plan::Head { input, n } => Plan::Head {
            input: Box::new(prune(*input, req)),
            n,
        },
        // Joins rename/suffix columns; prune conservatively on both sides.
        Plan::Join {
            left,
            right,
            key,
            kind,
        } => Plan::Join {
            left: Box::new(prune(*left, Req::All)),
            right: Box::new(prune(*right, Req::All)),
            key,
            kind,
        },
    }
}

fn map_children(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(f(*input)),
            columns,
        },
        Plan::WithColumn { input, name, expr } => Plan::WithColumn {
            input: Box::new(f(*input)),
            name,
            expr,
        },
        Plan::GroupBy { input, keys, aggs } => Plan::GroupBy {
            input: Box::new(f(*input)),
            keys,
            aggs,
        },
        Plan::Sort {
            input,
            by,
            descending,
        } => Plan::Sort {
            input: Box::new(f(*input)),
            by,
            descending,
        },
        Plan::Head { input, n } => Plan::Head {
            input: Box::new(f(*input)),
            n,
        },
        Plan::Join {
            left,
            right,
            key,
            kind,
        } => Plan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            key,
            kind,
        },
    }
}

fn shift_sources(plan: Plan, by: usize) -> Plan {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => Plan::Scan {
            source: source + by,
            projection,
            predicate,
        },
        other => map_children(other, &mut |c| shift_sources(c, by)),
    }
}

fn substitute_scan(plan: Plan, inner: &Plan) -> Plan {
    match plan {
        Plan::Scan {
            projection: None,
            predicate: None,
            ..
        } => inner.clone(),
        Plan::Scan { .. } => panic!("compose() requires a bare (unoptimized) scan"),
        other => map_children(other, &mut |c| substitute_scan(c, inner)),
    }
}

// ---------------------------------------------------------------------------
// Canonical form & fingerprint
// ---------------------------------------------------------------------------

fn canonicalize(plan: &Plan) -> Plan {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => {
            let projection = projection.as_ref().map(|p| {
                let mut p = p.clone();
                p.sort();
                p
            });
            Plan::Scan {
                source: *source,
                projection,
                predicate: predicate.as_ref().map(Expr::canonicalize),
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(canonicalize(input)),
            predicate: predicate.canonicalize(),
        },
        other => map_children(other.clone(), &mut |c| canonicalize(&c)),
    }
}

fn agg_render(a: &Agg) -> String {
    match a {
        Agg::Count => "count".to_owned(),
        Agg::Sum(c) => format!("sum({c})"),
        Agg::Mean(c) => format!("mean({c})"),
        Agg::Min(c) => format!("min({c})"),
        Agg::Max(c) => format!("max({c})"),
        Agg::Median(c) => format!("median({c})"),
        Agg::Quantile(c, q) => format!("quantile({c},{q:?})"),
    }
}

fn agg_source(a: &Agg) -> Option<&str> {
    match a {
        Agg::Count => None,
        Agg::Sum(c) | Agg::Mean(c) | Agg::Min(c) | Agg::Max(c) | Agg::Median(c) => Some(c),
        Agg::Quantile(c, _) => Some(c),
    }
}

fn fold_plan(plan: &Plan, h: &mut Fnv1a) {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => {
            h.update_str("scan");
            h.update_u64(*source as u64);
            if let Some(p) = projection {
                for c in p {
                    h.update_str(c);
                }
            }
            h.update_str("/");
            if let Some(p) = predicate {
                p.fingerprint_into(h);
            }
        }
        Plan::Filter { input, predicate } => {
            h.update_str("filter");
            predicate.fingerprint_into(h);
            fold_plan(input, h);
        }
        Plan::Project { input, columns } => {
            h.update_str("project");
            for c in columns {
                h.update_str(&c.name);
                h.update_str(&c.ty.to_string());
            }
            fold_plan(input, h);
        }
        Plan::WithColumn { input, name, expr } => {
            h.update_str("with_column");
            h.update_str(name);
            expr.fingerprint_into(h);
            fold_plan(input, h);
        }
        Plan::GroupBy { input, keys, aggs } => {
            h.update_str("group_by");
            for k in keys {
                h.update_str(k);
            }
            h.update_str("/");
            for (n, a) in aggs {
                h.update_str(n);
                h.update_str(&agg_render(a));
            }
            fold_plan(input, h);
        }
        Plan::Sort {
            input,
            by,
            descending,
        } => {
            h.update_str("sort");
            h.update_str(by);
            h.update_u64(u64::from(*descending));
            fold_plan(input, h);
        }
        Plan::Head { input, n } => {
            h.update_str("head");
            h.update_u64(*n as u64);
            fold_plan(input, h);
        }
        Plan::Join {
            left,
            right,
            key,
            kind,
        } => {
            h.update_str("join");
            h.update_str(key);
            h.update_str(match kind {
                JoinKind::Inner => "inner",
                JoinKind::Left => "left",
            });
            fold_plan(left, h);
            fold_plan(right, h);
        }
    }
}

pub(crate) fn subplan_fingerprint(plan: &Plan) -> u64 {
    let mut h = Fnv1a::new();
    fold_plan(&canonicalize(plan), &mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Contract derivation
// ---------------------------------------------------------------------------

fn unify(a: ColType, b: ColType) -> Option<ColType> {
    use ColType::*;
    match (a, b) {
        (x, y) if x == y => Some(x),
        (Any, x) | (x, Any) => Some(x),
        (Num, Int) | (Int, Num) => Some(Int),
        (Num, Float) | (Float, Num) => Some(Float),
        _ => None,
    }
}

fn require(reqs: &mut [Vec<(String, ColType)>], source: usize, name: &str, ty: ColType) {
    let cols = &mut reqs[source];
    match cols.iter_mut().find(|(n, _)| n == name) {
        Some((_, existing)) => {
            *existing = unify(*existing, ty)
                .unwrap_or_else(|| panic!("column {name:?} consumed as both {existing} and {ty}"));
        }
        None => cols.push((name.to_owned(), ty)),
    }
}

fn require_expr(reqs: &mut [Vec<(String, ColType)>], source: usize, e: &Expr) {
    let mut refs = Vec::new();
    e.col_refs(&mut refs);
    for r in refs {
        require(reqs, source, &r.name, r.ty);
    }
}

/// Collect column requirements, attributing each node's references to the
/// single source feeding it. Nodes above a join consume *derived* columns
/// (join output), so they add no source requirements. Returns the set of
/// sources below `plan`.
fn collect_requirements(plan: &Plan, reqs: &mut Vec<Vec<(String, ColType)>>) -> Vec<usize> {
    match plan {
        Plan::Scan {
            source, predicate, ..
        } => {
            if let Some(p) = predicate {
                require_expr(reqs, *source, p);
            }
            vec![*source]
        }
        Plan::Filter { input, predicate } => {
            let below = collect_requirements(input, reqs);
            if let [s] = below[..] {
                require_expr(reqs, s, predicate);
            }
            below
        }
        Plan::Project { input, columns } => {
            let below = collect_requirements(input, reqs);
            if let [s] = below[..] {
                for c in columns {
                    require(reqs, s, &c.name, c.ty);
                }
            }
            below
        }
        Plan::WithColumn { input, expr, .. } => {
            let below = collect_requirements(input, reqs);
            if let [s] = below[..] {
                require_expr(reqs, s, expr);
            }
            below
        }
        Plan::GroupBy { input, keys, aggs } => {
            let below = collect_requirements(input, reqs);
            if let [s] = below[..] {
                for k in keys {
                    require(reqs, s, k, ColType::Any);
                }
                for (_, a) in aggs {
                    if let Some(src) = agg_source(a) {
                        require(reqs, s, src, ColType::Num);
                    }
                }
            }
            below
        }
        Plan::Sort { input, by, .. } => {
            let below = collect_requirements(input, reqs);
            if let [s] = below[..] {
                require(reqs, s, by, ColType::Any);
            }
            below
        }
        Plan::Head { input, .. } => collect_requirements(input, reqs),
        Plan::Join {
            left, right, key, ..
        } => {
            let l = collect_requirements(left, reqs);
            let r = collect_requirements(right, reqs);
            if let [s] = l[..] {
                require(reqs, s, key, ColType::Any);
            }
            if let [s] = r[..] {
                require(reqs, s, key, ColType::Any);
            }
            let mut all = l;
            all.extend(r);
            all
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

enum Out<'a> {
    View {
        view: FrameView<'a>,
        cols: Option<Vec<String>>,
    },
    Owned(Frame),
}

fn materialize_projected(
    view: &FrameView<'_>,
    cols: Option<&[String]>,
) -> Result<Frame, FrameError> {
    match cols {
        None => Ok(view.materialize()),
        Some(names) => {
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let projected = view.frame().select(&refs)?;
            Ok(match view.selection() {
                Selection::All(_) => projected,
                Selection::Indices(idx) => projected.take(idx),
            })
        }
    }
}

fn out_into_frame(out: Out<'_>, stats: &mut PlanStats) -> Result<Frame, FrameError> {
    match out {
        Out::Owned(f) => Ok(f),
        Out::View { view, cols } => {
            stats.materializations += 1;
            materialize_projected(&view, cols.as_deref())
        }
    }
}

fn exec<'a>(
    plan: &Plan,
    sources: &[&'a Frame],
    stats: &mut PlanStats,
    memo: &mut HashMap<u64, Frame>,
) -> Result<Out<'a>, FrameError> {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => {
            let frame = *sources.get(*source).ok_or_else(|| {
                FrameError::Plan(format!("plan scans source {source}, not provided"))
            })?;
            stats.rows_in += frame.height() as u64;
            stats.cols_total += frame.width() as u64;
            stats.bytes_eager += frame.estimated_bytes() as u64;
            match projection {
                Some(cols) => {
                    stats.cols_scanned += cols.len() as u64;
                    for c in cols {
                        stats.bytes_scanned += frame.column(c)?.estimated_bytes() as u64;
                    }
                }
                None => {
                    stats.cols_scanned += frame.width() as u64;
                    stats.bytes_scanned += frame.estimated_bytes() as u64;
                }
            }
            let mut view = frame.view();
            if let Some(p) = predicate {
                let ev = Evaluator::bind(p, &view)?;
                let mask = ev.mask(p, view.height());
                view = view.filter(&mask)?;
            }
            Ok(Out::View {
                view,
                cols: projection.clone(),
            })
        }
        Plan::Filter { input, predicate } => match exec(input, sources, stats, memo)? {
            Out::View { view, cols } => {
                let ev = Evaluator::bind(predicate, &view)?;
                let mask = ev.mask(predicate, view.height());
                Ok(Out::View {
                    view: view.filter(&mask)?,
                    cols,
                })
            }
            Out::Owned(f) => {
                let v = f.view();
                let ev = Evaluator::bind(predicate, &v)?;
                let mask = ev.mask(predicate, v.height());
                drop(ev);
                drop(v);
                Ok(Out::Owned(f.filter(&mask)?))
            }
        },
        Plan::Project { input, columns } => {
            let names: Vec<String> = columns.iter().map(|c| c.name.clone()).collect();
            match exec(input, sources, stats, memo)? {
                Out::View { view, .. } => {
                    // Validate presence eagerly so missing columns surface
                    // here, not at the final gather.
                    for n in &names {
                        view.frame().column(n)?;
                    }
                    Ok(Out::View {
                        view,
                        cols: Some(names),
                    })
                }
                Out::Owned(f) => {
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    Ok(Out::Owned(f.select(&refs)?))
                }
            }
        }
        Plan::WithColumn { input, name, expr } => {
            let out = exec(input, sources, stats, memo)?;
            let mut f = out_into_frame(out, stats)?;
            let v = f.view();
            let ev = Evaluator::bind(expr, &v)?;
            let col = eval_column(&ev, expr, v.height())?;
            drop(ev);
            drop(v);
            if f.has_column(name) {
                f.drop_column(name)?;
            }
            f.add_column(name, col)?;
            Ok(Out::Owned(f))
        }
        Plan::GroupBy { input, keys, aggs } => {
            let fp = subplan_fingerprint(plan);
            if let Some(cached) = memo.get(&fp) {
                stats.subplans_deduped += 1;
                return Ok(Out::Owned(cached.clone()));
            }
            let keys_ref: Vec<&str> = keys.iter().map(String::as_str).collect();
            let aggs_ref: Vec<(&str, Agg)> =
                aggs.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();
            let grouped = match exec(input, sources, stats, memo)? {
                Out::View { view, .. } => view.group_by(&keys_ref, &aggs_ref)?,
                Out::Owned(f) => group_by(&f, &keys_ref, &aggs_ref)?,
            };
            stats.materializations += 1;
            memo.insert(fp, grouped.clone());
            Ok(Out::Owned(grouped))
        }
        Plan::Sort {
            input,
            by,
            descending,
        } => match exec(input, sources, stats, memo)? {
            Out::View { view, cols } => {
                let order = view_sort_indices(&view, by, *descending)?;
                Ok(Out::View {
                    view: view.take(&order),
                    cols,
                })
            }
            Out::Owned(f) => Ok(Out::Owned(f.sort_by(by, *descending)?)),
        },
        Plan::Head { input, n } => match exec(input, sources, stats, memo)? {
            Out::View { view, cols } => Ok(Out::View {
                view: view.head(*n),
                cols,
            }),
            Out::Owned(f) => Ok(Out::Owned(f.head(*n))),
        },
        Plan::Join {
            left,
            right,
            key,
            kind,
        } => {
            let fp = subplan_fingerprint(plan);
            if let Some(cached) = memo.get(&fp) {
                stats.subplans_deduped += 1;
                return Ok(Out::Owned(cached.clone()));
            }
            let lf = {
                let out = exec(left, sources, stats, memo)?;
                out_into_frame(out, stats)?
            };
            let rf = {
                let out = exec(right, sources, stats, memo)?;
                out_into_frame(out, stats)?
            };
            let joined = join(&lf, &rf, key, *kind)?;
            stats.materializations += 1;
            memo.insert(fp, joined.clone());
            Ok(Out::Owned(joined))
        }
    }
}

/// The eager baseline interpreter behind [`LazyPlan::execute_eager`]: the
/// unoptimized tree, one fully materialized frame per node. Duplicate
/// subplans under a join recompute — exactly what the pre-IR stages did.
fn eager_exec(plan: &Plan, sources: &[&Frame]) -> Result<Frame, FrameError> {
    match plan {
        Plan::Scan { source, .. } => {
            let frame = *sources.get(*source).ok_or_else(|| {
                FrameError::Plan(format!("plan scans source {source}, not provided"))
            })?;
            // The eager engine handed each stage its own contiguous copy of
            // every column — O(bytes) per scan, the cost the lazy IR avoids.
            Ok(frame.compact())
        }
        Plan::Filter { input, predicate } => {
            let f = eager_exec(input, sources)?;
            let mask = {
                let v = f.view();
                let ev = Evaluator::bind(predicate, &v)?;
                ev.mask(predicate, v.height())
            };
            f.filter(&mask)
        }
        Plan::Project { input, columns } => {
            let f = eager_exec(input, sources)?;
            let refs: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
            f.select(&refs)
        }
        Plan::WithColumn { input, name, expr } => {
            let mut f = eager_exec(input, sources)?;
            let col = {
                let v = f.view();
                let ev = Evaluator::bind(expr, &v)?;
                eval_column(&ev, expr, v.height())?
            };
            if f.has_column(name) {
                f.drop_column(name)?;
            }
            f.add_column(name, col)?;
            Ok(f)
        }
        Plan::GroupBy { input, keys, aggs } => {
            let f = eager_exec(input, sources)?;
            let keys_ref: Vec<&str> = keys.iter().map(String::as_str).collect();
            let aggs_ref: Vec<(&str, Agg)> =
                aggs.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();
            group_by(&f, &keys_ref, &aggs_ref)
        }
        Plan::Sort {
            input,
            by,
            descending,
        } => eager_exec(input, sources)?.sort_by(by, *descending),
        Plan::Head { input, n } => Ok(eager_exec(input, sources)?.head(*n).compact()),
        Plan::Join {
            left,
            right,
            key,
            kind,
        } => {
            let lf = eager_exec(left, sources)?;
            let rf = eager_exec(right, sources)?;
            join(&lf, &rf, key, *kind)
        }
    }
}

/// Argsort the view's rows by one column — stable, nulls last; the selection
/// counterpart of [`Frame::sort_indices`].
fn view_sort_indices(
    view: &FrameView<'_>,
    by: &str,
    descending: bool,
) -> Result<Vec<usize>, FrameError> {
    let cv = view.column(by)?;
    let h = view.height();
    let mut idx: Vec<usize> = (0..h).collect();
    match cv.dtype() {
        DType::Int | DType::Bool => {
            let keys: Vec<Option<i64>> = (0..h).map(|i| cv.get_i64(i)).collect();
            idx.sort_by_key(|&i| match keys[i] {
                Some(v) => (false, if descending { -v } else { v }),
                None => (true, 0),
            });
        }
        DType::Float => {
            let keys: Vec<Option<f64>> = (0..h).map(|i| cv.get_f64(i)).collect();
            idx.sort_by(|&a, &b| match (keys[a], keys[b]) {
                (Some(x), Some(y)) => {
                    let o = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
                    if descending {
                        o.reverse()
                    } else {
                        o
                    }
                }
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            });
        }
        DType::Str => {
            let keys: Vec<Option<&str>> = (0..h).map(|i| cv.get_str(i)).collect();
            idx.sort_by(|&a, &b| {
                let ord = match (keys[a], keys[b]) {
                    (Some(x), Some(y)) => x.cmp(y),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => std::cmp::Ordering::Equal,
                };
                if descending && keys[a].is_some() && keys[b].is_some() {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
    }
    Ok(idx)
}

/// Evaluate an expression into a column. Numeric outputs stay `Int` when
/// every value is integral; booleans materialize as 0/1 ints (the column
/// layer has no nullable bool constructor).
fn eval_column(ev: &Evaluator<'_>, expr: &Expr, height: usize) -> Result<Column, FrameError> {
    let mut any_float = false;
    let mut any_str = false;
    let mut any_num = false;
    let vals: Vec<Value<'_>> = (0..height).map(|i| ev.eval(expr, i)).collect();
    for v in &vals {
        match v {
            Value::Float(_) => any_float = true,
            Value::Int(_) | Value::Bool(_) => any_num = true,
            Value::Str(_) => any_str = true,
            Value::Null => {}
        }
    }
    if any_str && (any_float || any_num) {
        return Err(FrameError::Plan(format!(
            "expression {} mixes string and numeric values",
            expr.render()
        )));
    }
    Ok(if any_str {
        Column::from_opt_str(
            vals.iter()
                .map(|v| match v {
                    Value::Str(s) => Some((*s).to_owned()),
                    _ => None,
                })
                .collect(),
        )
    } else if any_float {
        Column::from_opt_f64(
            vals.iter()
                .map(|v| match v {
                    Value::Float(x) => Some(*x),
                    Value::Int(x) => Some(*x as f64),
                    Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
                    _ => None,
                })
                .collect(),
        )
    } else {
        Column::from_opt_i64(
            vals.iter()
                .map(|v| match v {
                    Value::Int(x) => Some(*x),
                    Value::Bool(b) => Some(i64::from(*b)),
                    _ => None,
                })
                .collect(),
        )
    })
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render_plan(plan: &Plan) -> String {
    let mut s = String::new();
    render_into(plan, 0, &mut s);
    s
}

fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan {
            source,
            projection,
            predicate,
        } => {
            let cols = match projection {
                Some(p) => format!("[{}]", p.join(", ")),
                None => "*".to_owned(),
            };
            match predicate {
                Some(p) => format!("Scan source={source} cols={cols} pred={}", p.render()),
                None => format!("Scan source={source} cols={cols}"),
            }
        }
        Plan::Filter { predicate, .. } => format!("Filter {}", predicate.render()),
        Plan::Project { columns, .. } => format!(
            "Project [{}]",
            columns
                .iter()
                .map(|c| format!("{}:{}", c.name, c.ty))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Plan::WithColumn { name, expr, .. } => {
            format!("WithColumn {name} = {}", expr.render())
        }
        Plan::GroupBy { keys, aggs, .. } => format!(
            "GroupBy keys=[{}] aggs=[{}]",
            keys.join(", "),
            aggs.iter()
                .map(|(n, a)| format!("{n}={}", agg_render(a)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Plan::Sort { by, descending, .. } => {
            format!("Sort by={by} {}", if *descending { "desc" } else { "asc" })
        }
        Plan::Head { n, .. } => format!("Head n={n}"),
        Plan::Join { key, kind, .. } => format!(
            "Join key={key} kind={}",
            match kind {
                JoinKind::Inner => "inner",
                JoinKind::Left => "left",
            }
        ),
    }
}

fn render_into(plan: &Plan, depth: usize, s: &mut String) {
    for _ in 0..depth {
        s.push_str("  ");
    }
    s.push_str(&node_label(plan));
    s.push('\n');
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::WithColumn { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Head { input, .. } => render_into(input, depth + 1, s),
        Plan::Join { left, right, .. } => {
            render_into(left, depth + 1, s);
            render_into(right, depth + 1, s);
        }
    }
}

fn dot_node(plan: &Plan, next: &mut usize, s: &mut String) -> usize {
    let id = *next;
    *next += 1;
    let label = node_label(plan).replace('"', "'");
    let _ = writeln!(s, "  n{id} [label=\"{label}\"];");
    let link = |child: &Plan, next: &mut usize, s: &mut String| {
        let c = dot_node(child, next, s);
        let _ = writeln!(s, "  n{c} -> n{id};");
    };
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::WithColumn { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Head { input, .. } => link(input, next, s),
        Plan::Join { left, right, .. } => {
            link(left, next, s);
            link(right, next, s);
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copycount;
    use crate::expr::{col_any, col_num, col_str, lit_i64};

    fn curated() -> Frame {
        Frame::new()
            .with("year", Column::from_i64(vec![2023, 2023, 2024, 2024]))
            .with("nsteps", Column::from_i64(vec![10, 20, 5, 50]))
            .with(
                "state",
                Column::from_str(vec![
                    "COMPLETED".into(),
                    "FAILED".into(),
                    "COMPLETED".into(),
                    "COMPLETED".into(),
                ]),
            )
            .with(
                "wait_s",
                Column::from_opt_i64(vec![Some(10), None, Some(50), Some(5)]),
            )
            .with("payload", Column::from_f64(vec![0.0; 4]))
    }

    #[test]
    fn filter_project_executes_lazily_and_matches_eager() {
        let f = curated();
        let plan = LazyPlan::scan()
            .filter(col_num("wait_s").is_not_null())
            .filter(col_num("year").eq(lit_i64(2024)))
            .project(&[col_str("state"), col_num("wait_s")]);

        copycount::reset();
        let out = plan.execute_view(&f).unwrap();
        assert_eq!(copycount::rows_copied(), 0, "view path must not copy");
        assert_eq!(out.height(), 2);

        let got = plan.execute(&f).unwrap();
        assert_eq!(got.column_names(), vec!["state", "wait_s"]);
        assert_eq!(got.height(), 2);
        assert_eq!(got.column("wait_s").unwrap().get_i64(0), Some(50));
    }

    #[test]
    fn optimizer_fuses_pushes_and_prunes() {
        let plan = LazyPlan::scan()
            .filter(col_num("wait_s").is_not_null())
            .filter(col_num("year").eq(lit_i64(2024)))
            .project(&[col_str("state"), col_num("wait_s")]);
        let opt = plan.optimized();
        // Root is the projection; below it sits a single pruned scan with
        // both predicates pushed in.
        match &opt {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Scan {
                    projection,
                    predicate,
                    ..
                } => {
                    let p = projection.as_ref().expect("pruned");
                    assert_eq!(
                        p.iter().map(String::as_str).collect::<Vec<_>>(),
                        vec!["state", "wait_s", "year"],
                        "projection = needed ∪ predicate cols, sorted"
                    );
                    let pred = predicate.as_ref().expect("pushed");
                    assert_eq!(conjunct_count(pred), 2);
                }
                other => panic!("expected scan, got {}", node_label(other)),
            },
            other => panic!("expected project, got {}", node_label(other)),
        }
    }

    #[test]
    fn plan_stats_report_scan_reduction() {
        let f = curated();
        let plan = LazyPlan::scan()
            .filter(col_num("year").eq(lit_i64(2024)))
            .project(&[col_num("wait_s")]);
        planstats::reset();
        plan.execute(&f).unwrap();
        let s = planstats::snapshot();
        assert_eq!(s.plans, 1);
        assert_eq!(s.cols_total, 5);
        assert_eq!(s.cols_scanned, 2, "wait_s + predicate col year");
        assert!(s.bytes_scanned < s.bytes_eager);
        assert_eq!(s.predicates_pushed, 1);
        assert_eq!(s.rows_in, 4);
        assert_eq!(s.rows_out, 2);
        assert_eq!(s.materializations, 1, "single final gather");
    }

    #[test]
    fn group_by_and_sort_match_eager_path() {
        let f = curated();
        let plan = LazyPlan::scan()
            .group_by(
                &["year"],
                &[("jobs", Agg::Count), ("steps", Agg::Sum("nsteps".into()))],
            )
            .sort("year", false);
        let got = plan.execute(&f).unwrap();
        let eager = group_by(
            &f,
            &["year"],
            &[("jobs", Agg::Count), ("steps", Agg::Sum("nsteps".into()))],
        )
        .unwrap()
        .sort_by("year", false)
        .unwrap();
        assert_eq!(got, eager);
    }

    #[test]
    fn fingerprint_is_insensitive_to_conjunct_order() {
        let a = LazyPlan::scan()
            .filter(col_num("wait_s").is_not_null())
            .filter(col_num("year").eq(lit_i64(2024)))
            .project(&[col_num("wait_s")]);
        let b = LazyPlan::scan()
            .filter(col_num("year").eq(lit_i64(2024)))
            .filter(col_num("wait_s").is_not_null())
            .project(&[col_num("wait_s")]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = LazyPlan::scan()
            .filter(col_num("year").eq(lit_i64(2023)))
            .filter(col_num("wait_s").is_not_null())
            .project(&[col_num("wait_s")]);
        assert_ne!(a.fingerprint(), c.fingerprint(), "different literal");
    }

    #[test]
    fn derived_schema_reflects_typed_consumption() {
        let plan = LazyPlan::scan()
            .filter(
                col_any("start")
                    .is_not_null()
                    .and(col_num("nnodes").gt(lit_i64(0))),
            )
            .project(&[col_num("elapsed_min"), col_num("nnodes")]);
        let schema = plan.required_schema();
        assert_eq!(schema.get("start").unwrap().ty, ColType::Any);
        assert_eq!(schema.get("nnodes").unwrap().ty, ColType::Num);
        assert_eq!(schema.get("elapsed_min").unwrap().ty, ColType::Num);
        assert!(schema.columns().iter().all(|c| c.nullable), "null-total");
    }

    #[test]
    #[should_panic(expected = "consumed as both")]
    fn conflicting_typed_reads_panic() {
        let plan = LazyPlan::scan()
            .filter(col_str("x").eq(crate::expr::lit_str("a")))
            .project(&[col_num("x")]);
        let _ = plan.required_schema();
    }

    #[test]
    fn join_of_identical_subplans_deduplicates() {
        let f = curated();
        let per_year = LazyPlan::scan().group_by(&["year"], &[("jobs", Agg::Count)]);
        let plan = per_year.clone().join(
            LazyPlan::scan().group_by(&["year"], &[("jobs", Agg::Count)]),
            "year",
            JoinKind::Inner,
        );
        // Both sides scan source 0 after renumbering? No — join shifts the
        // right side to source 1, so dedup must NOT fire across sources.
        planstats::reset();
        let out = plan.execute_multi(&[&f, &f]).unwrap();
        assert_eq!(out.height(), 2);
        assert_eq!(planstats::snapshot().subplans_deduped, 0);

        // Same-source duplicate subplans (compose onto one source) dedup.
        let dup = LazyPlan {
            root: Plan::Join {
                left: Box::new(per_year.root.clone()),
                right: Box::new(per_year.root.clone()),
                key: "year".into(),
                kind: JoinKind::Inner,
            },
            sources: 1,
        };
        planstats::reset();
        let out = dup.execute(&f).unwrap();
        assert_eq!(out.height(), 2);
        assert_eq!(planstats::snapshot().subplans_deduped, 1);
    }

    #[test]
    fn sort_on_view_matches_frame_sort() {
        let f = curated();
        let plan = LazyPlan::scan().sort("wait_s", false);
        assert_eq!(
            plan.execute(&f).unwrap(),
            f.sort_by("wait_s", false).unwrap()
        );
        let plan = LazyPlan::scan().sort("state", true);
        assert_eq!(plan.execute(&f).unwrap(), f.sort_by("state", true).unwrap());
    }

    #[test]
    fn with_column_derives_values() {
        let f = curated();
        let plan = LazyPlan::scan()
            .with_column("double_steps", col_num("nsteps").mul(lit_i64(2)))
            .project(&[col_any("double_steps")]);
        let out = plan.execute(&f).unwrap();
        assert_eq!(out.column("double_steps").unwrap().get_i64(1), Some(40));
    }

    #[test]
    fn head_limits_rows_zero_copy() {
        let f = curated();
        let plan = LazyPlan::scan().head(2);
        copycount::reset();
        let out = plan.execute_view(&f).unwrap();
        assert_eq!(copycount::rows_copied(), 0);
        assert_eq!(out.height(), 2);
    }

    #[test]
    fn explain_renders_before_and_after() {
        let plan = LazyPlan::scan()
            .filter(col_num("year").eq(lit_i64(2024)))
            .project(&[col_num("wait_s")]);
        let before = plan.explain();
        let after = plan.explain_optimized();
        assert!(before.contains("Filter"));
        assert!(
            !after.contains("Filter"),
            "filter pushed into scan:\n{after}"
        );
        assert!(after.contains("Scan"));
        assert!(after.contains("pred="));
        let dot = plan.to_dot();
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn compose_substitutes_the_scan() {
        let inner = LazyPlan::scan().filter(col_num("year").eq(lit_i64(2024)));
        let outer = LazyPlan::scan().group_by(&["state"], &[("n", Agg::Count)]);
        let composed = outer.compose(inner);
        let f = curated();
        let got = composed.execute(&f).unwrap();
        assert_eq!(got.height(), 1, "2024 rows are all COMPLETED");
        let schema = composed.required_schema();
        assert!(schema.contains("year"), "inner requirement surfaces");
        assert!(schema.contains("state"));
    }
}
