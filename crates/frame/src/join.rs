//! Morsel-driven hash joins on a single key column.
//!
//! Used by the federation analytics (§6's "multi-cluster and federated
//! analytics" future work): aligning per-system summary frames on a shared
//! key. Supports inner and left joins; right columns are renamed with a
//! suffix when they collide with left names.
//!
//! The build phase indexes the right side once; the probe phase walks the
//! left side in `par::split_ranges` morsels with per-worker
//! [`crate::column::Cursor`]s, so a chunked (multi-month) left frame probes
//! in parallel without compaction.

use crate::column::{Column, Cursor, DType};
use crate::frame::{Frame, FrameError};
use schedflow_dataflow::par;
use std::collections::HashMap;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only keys present on both sides.
    Inner,
    /// Keep every left row; unmatched right columns are null.
    Left,
}

fn key_bytes(dtype: DType, cur: &mut Cursor<'_>, row: usize) -> Option<Vec<u8>> {
    match dtype {
        DType::Str => cur.get_str(row).map(|s| {
            let mut k = vec![3u8];
            k.extend_from_slice(s.as_bytes());
            k
        }),
        DType::Int => cur.get_i64(row).map(|v| {
            let mut k = vec![1u8];
            k.extend_from_slice(&v.to_le_bytes());
            k
        }),
        DType::Bool => cur.get_i64(row).map(|v| vec![2u8, v as u8]),
        DType::Float => None, // float keys rejected by validation below
    }
}

/// Join `left` and `right` on the named key column.
///
/// One output row per matching (left row, right row) pair; left rows without
/// a match survive only under [`JoinKind::Left`] (with nulls on the right).
pub fn join(left: &Frame, right: &Frame, key: &str, kind: JoinKind) -> Result<Frame, FrameError> {
    let lk = left.column(key)?;
    let rk = right.column(key)?;
    for (name, col) in [(key, lk), (key, rk)] {
        if col.dtype() == DType::Float {
            return Err(FrameError::TypeMismatch {
                column: name.to_owned(),
                expected: DType::Str,
                got: DType::Float,
            });
        }
    }
    if lk.dtype() != rk.dtype() {
        return Err(FrameError::TypeMismatch {
            column: key.to_owned(),
            expected: lk.dtype(),
            got: rk.dtype(),
        });
    }

    // Build: index the right side, key → row indices.
    let mut index: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    let mut rcur = rk.cursor();
    for row in 0..right.height() {
        if let Some(k) = key_bytes(rk.dtype(), &mut rcur, row) {
            index.entry(k).or_default().push(row);
        }
    }

    // Probe: emit row pairs, one morsel per worker.
    let probe = |range: std::ops::Range<usize>| -> (Vec<usize>, Vec<Option<usize>>) {
        let mut lcur = lk.cursor();
        let mut left_rows: Vec<usize> = Vec::new();
        let mut right_rows: Vec<Option<usize>> = Vec::new();
        for row in range {
            match key_bytes(lk.dtype(), &mut lcur, row).and_then(|k| index.get(&k)) {
                Some(matches) => {
                    for &r in matches {
                        left_rows.push(row);
                        right_rows.push(Some(r));
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        left_rows.push(row);
                        right_rows.push(None);
                    }
                }
            }
        }
        (left_rows, right_rows)
    };

    let height = left.height();
    let ranges = par::split_ranges(height, par::threads());
    let parts: Vec<(Vec<usize>, Vec<Option<usize>>)> =
        if height < par::PAR_THRESHOLD || ranges.len() <= 1 {
            vec![probe(0..height)]
        } else {
            std::thread::scope(|scope| {
                let joins: Vec<_> = ranges
                    .iter()
                    .map(|r| {
                        let r = r.clone();
                        let probe = &probe;
                        scope.spawn(move || probe(r))
                    })
                    .collect();
                joins
                    .into_iter()
                    // Re-raise worker panics on the coordinating thread.
                    .map(|j| j.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for (lr, rr) in parts {
        left_rows.extend(lr);
        right_rows.extend(rr);
    }

    // Assemble: all left columns, then right columns (key skipped, name
    // collisions suffixed `_right`).
    let mut out = left.take(&left_rows);
    for (name, col) in right.iter() {
        if name == key {
            continue;
        }
        let out_name = if out.has_column(name) {
            format!("{name}_right")
        } else {
            name.to_owned()
        };
        let gathered = gather_optional(col, &right_rows);
        out.add_column(&out_name, gathered)?;
    }
    Ok(out)
}

/// Gather rows from `col` where `None` produces a null.
fn gather_optional(col: &Column, rows: &[Option<usize>]) -> Column {
    match col.dtype() {
        DType::Int | DType::Bool => Column::from_opt_i64(
            rows.iter()
                .map(|r| r.and_then(|i| col.get_i64(i)))
                .collect(),
        ),
        DType::Float => Column::from_opt_f64(
            rows.iter()
                .map(|r| r.and_then(|i| col.get_f64(i)))
                .collect(),
        ),
        DType::Str => Column::from_opt_str(
            rows.iter()
                .map(|r| r.and_then(|i| col.get_str(i).map(str::to_owned)))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(vec!["a".into(), "b".into(), "c".into()]),
            )
            .with("jobs", Column::from_i64(vec![10, 20, 30]))
    }

    fn right() -> Frame {
        Frame::new()
            .with("user", Column::from_str(vec!["b".into(), "a".into()]))
            .with("failures", Column::from_i64(vec![5, 1]))
            .with("jobs", Column::from_i64(vec![200, 100]))
    }

    #[test]
    fn inner_join_matches_keys() {
        let j = join(&left(), &right(), "user", JoinKind::Inner).unwrap();
        assert_eq!(j.height(), 2);
        assert_eq!(j.str("user").unwrap().str_values(), &["a", "b"]);
        assert_eq!(j.i64("failures").unwrap().i64_values(), &[1, 5]);
        // Collision renamed.
        assert!(j.has_column("jobs_right"));
        assert_eq!(j.column("jobs_right").unwrap().get_i64(0), Some(100));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = join(&left(), &right(), "user", JoinKind::Left).unwrap();
        assert_eq!(j.height(), 3);
        assert_eq!(j.column("failures").unwrap().get_i64(2), None);
        assert_eq!(j.i64("jobs").unwrap().i64_values(), &[10, 20, 30]);
    }

    #[test]
    fn duplicate_right_keys_multiply_rows() {
        let right = Frame::new()
            .with("user", Column::from_str(vec!["a".into(), "a".into()]))
            .with("x", Column::from_i64(vec![1, 2]));
        let j = join(&left(), &right, "user", JoinKind::Inner).unwrap();
        assert_eq!(j.height(), 2);
        assert_eq!(j.column("x").unwrap().get_i64(0), Some(1));
        assert_eq!(j.column("x").unwrap().get_i64(1), Some(2));
    }

    #[test]
    fn int_keys_supported() {
        let l = Frame::new().with("id", Column::from_i64(vec![1, 2]));
        let r = Frame::new()
            .with("id", Column::from_i64(vec![2]))
            .with("v", Column::from_f64(vec![9.5]));
        let j = join(&l, &r, "id", JoinKind::Left).unwrap();
        assert_eq!(j.column("v").unwrap().get_f64(0), None);
        assert_eq!(j.column("v").unwrap().get_f64(1), Some(9.5));
    }

    #[test]
    fn null_keys_never_match() {
        let l = Frame::new().with("id", Column::from_opt_i64(vec![Some(1), None]));
        let r = Frame::new()
            .with("id", Column::from_opt_i64(vec![Some(1), None]))
            .with("v", Column::from_i64(vec![7, 8]));
        let inner = join(&l, &r, "id", JoinKind::Inner).unwrap();
        assert_eq!(inner.height(), 1, "null keys drop from inner joins");
        let left_j = join(&l, &r, "id", JoinKind::Left).unwrap();
        assert_eq!(left_j.height(), 2);
        assert_eq!(left_j.column("v").unwrap().get_i64(1), None);
    }

    #[test]
    fn mismatched_key_types_rejected() {
        let l = Frame::new().with("k", Column::from_i64(vec![1]));
        let r = Frame::new().with("k", Column::from_str(vec!["1".into()]));
        assert!(join(&l, &r, "k", JoinKind::Inner).is_err());
        let f = Frame::new().with("k", Column::from_f64(vec![1.0]));
        assert!(join(&f, &f, "k", JoinKind::Inner).is_err());
    }

    #[test]
    fn string_null_propagation() {
        let l = Frame::new().with("k", Column::from_i64(vec![1, 2]));
        let r = Frame::new()
            .with("k", Column::from_i64(vec![1]))
            .with("name", Column::from_str(vec!["x".into()]));
        let j = join(&l, &r, "k", JoinKind::Left).unwrap();
        assert_eq!(j.column("name").unwrap().get_str(0), Some("x"));
        assert_eq!(j.column("name").unwrap().get_str(1), None);
    }

    #[test]
    fn chunked_left_side_probes_across_seams() {
        let l = Frame::vstack(&[left(), left()]).unwrap();
        let j = join(&l, &right(), "user", JoinKind::Inner).unwrap();
        assert_eq!(j.height(), 4);
        assert_eq!(j.str("user").unwrap().str_values(), &["a", "b", "a", "b"]);
        assert_eq!(j.i64("failures").unwrap().i64_values(), &[1, 5, 1, 5]);
    }
}
