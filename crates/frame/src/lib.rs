//! # schedflow-frame
//!
//! A small columnar frame engine — the in-process substitute for the
//! pandas/Polars layer of the paper's Python analysis stages.
//!
//! * [`column::Column`] — flat typed vectors (int/float/str/bool) with
//!   validity masks;
//! * [`frame::Frame`] — equal-length named columns with select / filter /
//!   sort / vstack;
//! * [`groupby`] — two-phase parallel hash aggregation (count, sum, mean,
//!   min, max, median, quantile);
//! * [`join`] — hash joins for multi-frame (federated) analyses;
//! * [`csv`] — quoting CSV / pipe-separated I/O plus type inference, the
//!   paper's curate-stage format boundary;
//! * [`stats`] — descriptive statistics feeding analytics and chart digests.

pub mod column;
pub mod csv;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod stats;

pub use column::{Cell, Column, DType};
pub use csv::{infer_types, read_csv_path, read_delimited, write_csv, write_csv_path, write_delimited, CsvError};
pub use frame::{Frame, FrameError};
pub use groupby::{group_by, Agg};
pub use join::{join, JoinKind};
