#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # schedflow-frame
//!
//! A small columnar frame engine — the in-process substitute for the
//! pandas/Polars layer of the paper's Python analysis stages.
//!
//! * [`column::Column`] — `Arc`-shared immutable chunks (int/float/str/bool)
//!   with validity masks; concat and slice are zero-copy chunk windowing;
//! * [`frame::Frame`] — equal-length named columns with select / filter /
//!   sort / O(chunks) `vstack`;
//! * [`view`] — selection-vector views (`filter`/`take`/`head` compose
//!   without copying; materialization is explicit and on demand);
//! * [`groupby`] — morsel-driven two-phase parallel hash aggregation
//!   (count, sum, mean, min, max, median, quantile) over chunked columns
//!   and views;
//! * [`join`] — hash joins for multi-frame (federated) analyses;
//! * [`csv`] — quoting CSV / pipe-separated I/O plus type inference, the
//!   paper's curate-stage format boundary;
//! * [`stats`] — descriptive statistics feeding analytics and chart digests;
//! * [`copycount`] — thread-local row-copy accounting, the test hook that
//!   enforces the zero-copy contract;
//! * [`expr`] / [`plan`] — the lazy logical-plan IR: typed expression trees,
//!   an optimizer (filter fusion, predicate pushdown, projection pruning,
//!   common-subplan elimination), plan-derived input contracts and stable
//!   FNV-1a plan fingerprints, executing on the view machinery so optimized
//!   plans materialize at most once;
//! * [`planstats`] — thread-local plan-execution accounting (bytes scanned
//!   vs. eager, pruned columns) snapshotted into dataflow run reports;
//! * [`cost`] — the static cost/cardinality abstract interpreter behind the
//!   SF08xx lint family: symbolic row-count intervals, byte-width estimates,
//!   and duplicate-subplan/unbounded-join/post-materialization evidence.

pub mod column;
pub mod copycount;
pub mod cost;
pub mod csv;
pub mod expr;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod plan;
pub mod planstats;
pub mod stats;
pub mod view;

pub use column::{Cell, Column, Cursor, DType};
pub use cost::{analyze, CostAnalysis};
pub use csv::{
    infer_types, read_csv_path, read_delimited, write_csv, write_csv_path, write_delimited,
    CsvError,
};
pub use expr::{
    col_any, col_bool, col_f64, col_i64, col_num, col_str, lit_f64, lit_i64, lit_str, ColRef, Expr,
};
pub use frame::{Frame, FrameError};
pub use groupby::{group_by, Agg};
pub use join::{join, JoinKind};
pub use plan::{LazyPlan, Plan, PlanOutput};
pub use view::{ColumnView, FrameView, Selection, ViewCursor};
