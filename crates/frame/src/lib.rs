#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # schedflow-frame
//!
//! A small columnar frame engine — the in-process substitute for the
//! pandas/Polars layer of the paper's Python analysis stages.
//!
//! * [`column::Column`] — `Arc`-shared immutable chunks (int/float/str/bool)
//!   with validity masks; concat and slice are zero-copy chunk windowing;
//! * [`frame::Frame`] — equal-length named columns with select / filter /
//!   sort / O(chunks) `vstack`;
//! * [`view`] — selection-vector views (`filter`/`take`/`head` compose
//!   without copying; materialization is explicit and on demand);
//! * [`groupby`] — morsel-driven two-phase parallel hash aggregation
//!   (count, sum, mean, min, max, median, quantile) over chunked columns
//!   and views;
//! * [`join`] — hash joins for multi-frame (federated) analyses;
//! * [`csv`] — quoting CSV / pipe-separated I/O plus type inference, the
//!   paper's curate-stage format boundary;
//! * [`stats`] — descriptive statistics feeding analytics and chart digests;
//! * [`copycount`] — thread-local row-copy accounting, the test hook that
//!   enforces the zero-copy contract.

pub mod column;
pub mod copycount;
pub mod csv;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod stats;
pub mod view;

pub use column::{Cell, Column, Cursor, DType};
pub use csv::{
    infer_types, read_csv_path, read_delimited, write_csv, write_csv_path, write_delimited,
    CsvError,
};
pub use frame::{Frame, FrameError};
pub use groupby::{group_by, Agg};
pub use join::{join, JoinKind};
pub use view::{ColumnView, FrameView, Selection, ViewCursor};
