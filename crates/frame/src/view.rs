//! Selection-vector views: late-materializing row subsets of a frame.
//!
//! A [`FrameView`] is a borrowed frame plus a [`Selection`] — either the
//! identity or an explicit row-index vector. Building a view (`filter`,
//! `take`, `head`, and compositions thereof) never copies rows; only
//! [`FrameView::materialize`] gathers the selected rows into fresh buffers,
//! and kernels such as [`FrameView::group_by`] consume the selection
//! directly without ever materializing it.
//!
//! This is the API the analytics stages run on: a stage filters the merged
//! multi-month frame down to its population of interest and aggregates the
//! view in place, so the only full-size buffers in the process are the
//! shared per-month chunks.

use crate::column::{Cell, Column, Cursor, DType};
use crate::frame::{Frame, FrameError};
use crate::groupby::{group_by_selection, Agg};

/// Which rows of the base frame a view exposes, in view order.
#[derive(Debug, Clone)]
pub enum Selection {
    /// All rows `0..n` in frame order.
    All(usize),
    /// Explicit base-row indices (a subset and/or reordering).
    Indices(Vec<usize>),
}

impl Selection {
    pub fn len(&self) -> usize {
        match self {
            Selection::All(n) => *n,
            Selection::Indices(idx) => idx.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base-frame row behind view row `i`.
    #[inline]
    pub fn base(&self, i: usize) -> usize {
        match self {
            Selection::All(_) => i,
            Selection::Indices(idx) => idx[i],
        }
    }
}

impl Frame {
    /// View of every row, in frame order. Zero-copy.
    pub fn view(&self) -> FrameView<'_> {
        FrameView {
            frame: self,
            selection: Selection::All(self.height()),
        }
    }
}

/// A zero-copy row subset of a borrowed frame.
#[derive(Debug, Clone)]
pub struct FrameView<'a> {
    frame: &'a Frame,
    selection: Selection,
}

impl<'a> FrameView<'a> {
    /// The underlying frame (all rows, ignoring the selection).
    pub fn frame(&self) -> &'a Frame {
        self.frame
    }

    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Number of selected rows.
    pub fn height(&self) -> usize {
        self.selection.len()
    }

    pub fn is_empty(&self) -> bool {
        self.selection.is_empty()
    }

    /// Base-frame row behind view row `i`.
    pub fn base_row(&self, i: usize) -> usize {
        self.selection.base(i)
    }

    /// Column accessor; the returned [`ColumnView`] resolves the selection.
    pub fn column(&self, name: &str) -> Result<ColumnView<'_>, FrameError> {
        Ok(ColumnView {
            col: self.frame.column(name)?,
            selection: &self.selection,
        })
    }

    pub fn i64(&self, name: &str) -> Result<ColumnView<'_>, FrameError> {
        self.typed(name, DType::Int)
    }

    pub fn f64(&self, name: &str) -> Result<ColumnView<'_>, FrameError> {
        self.typed(name, DType::Float)
    }

    pub fn str(&self, name: &str) -> Result<ColumnView<'_>, FrameError> {
        self.typed(name, DType::Str)
    }

    pub fn bool(&self, name: &str) -> Result<ColumnView<'_>, FrameError> {
        self.typed(name, DType::Bool)
    }

    fn typed(&self, name: &str, dtype: DType) -> Result<ColumnView<'_>, FrameError> {
        let col = self.frame.column(name)?;
        if col.dtype() != dtype {
            return Err(FrameError::TypeMismatch {
                column: name.to_owned(),
                expected: dtype,
                got: col.dtype(),
            });
        }
        Ok(ColumnView {
            col,
            selection: &self.selection,
        })
    }

    /// Narrow the view to rows where `mask` (over *view* rows) is true.
    /// Zero-copy: composes selections.
    pub fn filter(&self, mask: &[bool]) -> Result<FrameView<'a>, FrameError> {
        if mask.len() != self.height() {
            return Err(FrameError::LengthMismatch {
                column: "<mask>".to_owned(),
                expected: self.height(),
                got: mask.len(),
            });
        }
        let indices = mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| self.selection.base(i))
            .collect();
        Ok(FrameView {
            frame: self.frame,
            selection: Selection::Indices(indices),
        })
    }

    /// Reorder/subset by view-row indices. Zero-copy.
    pub fn take(&self, indices: &[usize]) -> FrameView<'a> {
        let indices = indices.iter().map(|&i| self.selection.base(i)).collect();
        FrameView {
            frame: self.frame,
            selection: Selection::Indices(indices),
        }
    }

    /// First `n` view rows. Zero-copy.
    pub fn head(&self, n: usize) -> FrameView<'a> {
        let n = n.min(self.height());
        match &self.selection {
            Selection::All(_) => FrameView {
                frame: self.frame,
                selection: Selection::Indices((0..n).collect()),
            },
            Selection::Indices(idx) => FrameView {
                frame: self.frame,
                selection: Selection::Indices(idx[..n].to_vec()),
            },
        }
    }

    /// Gather the selected rows into an owned frame (the only copying step;
    /// identity selections just share the base frame's chunks).
    pub fn materialize(&self) -> Frame {
        match &self.selection {
            Selection::All(_) => self.frame.clone(),
            Selection::Indices(idx) => self.frame.take(idx),
        }
    }

    /// Morsel-driven group-by over the selection — aggregates without
    /// materializing the selected rows.
    pub fn group_by(&self, keys: &[&str], aggs: &[(&str, Agg)]) -> Result<Frame, FrameError> {
        group_by_selection(self.frame, &self.selection, keys, aggs)
    }
}

/// A column seen through a view's selection.
pub struct ColumnView<'v> {
    col: &'v Column,
    selection: &'v Selection,
}

impl<'v> ColumnView<'v> {
    pub fn len(&self) -> usize {
        self.selection.len()
    }

    pub fn is_empty(&self) -> bool {
        self.selection.is_empty()
    }

    pub fn dtype(&self) -> DType {
        self.col.dtype()
    }

    pub fn is_valid(&self, i: usize) -> bool {
        self.col.is_valid(self.selection.base(i))
    }

    pub fn get_i64(&self, i: usize) -> Option<i64> {
        self.col.get_i64(self.selection.base(i))
    }

    pub fn get_f64(&self, i: usize) -> Option<f64> {
        self.col.get_f64(self.selection.base(i))
    }

    pub fn get_str(&self, i: usize) -> Option<&'v str> {
        self.col.get_str(self.selection.base(i))
    }

    pub fn cell(&self, i: usize) -> Cell {
        self.col.cell(self.selection.base(i))
    }

    /// Boolean mask over *view* rows; null rows map to false.
    pub fn mask_f64(&self, pred: impl Fn(f64) -> bool) -> Vec<bool> {
        let mut cur = self.cursor();
        (0..self.len())
            .map(|i| cur.get_f64(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// Boolean mask over *view* rows; null rows map to false.
    pub fn mask_str(&self, pred: impl Fn(&str) -> bool) -> Vec<bool> {
        let mut cur = self.cursor();
        (0..self.len())
            .map(|i| cur.get_str(i).map(&pred).unwrap_or(false))
            .collect()
    }

    /// Validity mask over *view* rows.
    pub fn validity_mask(&self) -> Vec<bool> {
        let mut cur = self.cursor();
        (0..self.len()).map(|i| cur.is_valid(i)).collect()
    }

    /// Valid numeric values in view order (nulls skipped).
    pub fn numeric(&self) -> Vec<f64> {
        let mut cur = self.cursor();
        (0..self.len()).filter_map(|i| cur.get_f64(i)).collect()
    }

    /// Sequential reader over the view's rows: amortized O(1) per access
    /// for monotone scans even when the column has many chunks.
    pub fn cursor(&self) -> ViewCursor<'v> {
        ViewCursor {
            cur: self.col.cursor(),
            selection: self.selection,
        }
    }
}

/// A chunk-seeking cursor through a column view; the scan-loop counterpart
/// of [`crate::column::Cursor`] for selected row subsets.
pub struct ViewCursor<'v> {
    cur: Cursor<'v>,
    selection: &'v Selection,
}

impl<'v> ViewCursor<'v> {
    pub fn is_valid(&mut self, i: usize) -> bool {
        self.cur.is_valid(self.selection.base(i))
    }

    pub fn get_i64(&mut self, i: usize) -> Option<i64> {
        self.cur.get_i64(self.selection.base(i))
    }

    pub fn get_f64(&mut self, i: usize) -> Option<f64> {
        self.cur.get_f64(self.selection.base(i))
    }

    pub fn get_str(&mut self, i: usize) -> Option<&'v str> {
        self.cur.get_str(self.selection.base(i))
    }

    pub fn cell(&mut self, i: usize) -> Cell {
        self.cur.cell(self.selection.base(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copycount;

    fn sample() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
            )
            .with(
                "wait",
                Column::from_opt_i64(vec![Some(10), Some(300), None, Some(25)]),
            )
    }

    #[test]
    fn views_compose_without_copying() {
        let f = Frame::vstack(&[sample(), sample()]).unwrap();
        copycount::reset();
        let v = f.view();
        let big = v
            .filter(&v.column("wait").unwrap().mask_f64(|w| w > 20.0))
            .unwrap();
        let top = big.head(2);
        assert_eq!(copycount::rows_copied(), 0, "view chain must not copy rows");
        assert_eq!(big.height(), 4);
        assert_eq!(top.height(), 2);
        assert_eq!(top.column("user").unwrap().get_str(0), Some("b"));
        assert_eq!(top.base_row(1), 3);
    }

    #[test]
    fn materialize_matches_eager_filter() {
        let f = Frame::vstack(&[sample(), sample()]).unwrap();
        let mask: Vec<bool> = f.column("wait").unwrap().mask_f64(|w| w > 20.0);
        let eager = f.filter(&mask).unwrap();
        let view = f.view().filter(&mask).unwrap();
        assert_eq!(view.materialize(), eager);
    }

    #[test]
    fn take_through_a_filter_resolves_base_rows() {
        let f = sample();
        let v = f
            .view()
            .filter(&[false, true, false, true])
            .unwrap()
            .take(&[1, 0]);
        assert_eq!(v.height(), 2);
        assert_eq!(v.column("user").unwrap().get_str(0), Some("c"));
        assert_eq!(v.column("user").unwrap().get_str(1), Some("b"));
    }

    #[test]
    fn identity_materialize_shares_chunks() {
        let f = Frame::vstack(&[sample(), sample()]).unwrap();
        copycount::reset();
        let owned = f.view().materialize();
        assert_eq!(copycount::rows_copied(), 0);
        assert_eq!(owned, f);
    }

    #[test]
    fn column_view_honors_nulls() {
        let f = sample();
        let v = f.view().filter(&[true, false, true, true]).unwrap();
        let w = v.column("wait").unwrap();
        assert_eq!(w.get_i64(0), Some(10));
        assert_eq!(w.get_i64(1), None);
        assert!(!w.is_valid(1));
        assert_eq!(w.numeric(), vec![10.0, 25.0]);
        assert_eq!(w.mask_f64(|x| x > 20.0), vec![false, false, true]);
    }

    #[test]
    fn mask_length_checked() {
        let f = sample();
        assert!(matches!(
            f.view().filter(&[true]),
            Err(FrameError::LengthMismatch { .. })
        ));
    }
}
