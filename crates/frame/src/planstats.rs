//! Thread-local plan-execution accounting.
//!
//! Every [`crate::plan::LazyPlan`] execution folds a
//! [`PlanStats`](schedflow_dataflow::report::PlanStats) delta into a
//! thread-local tally (same idiom as [`crate::copycount`]). Pipeline tasks
//! call [`reset`] before running a stage body and [`snapshot`] after, then
//! attach the delta to the task's run report — giving per-stage visibility
//! into columns pruned, predicates pushed, and bytes scanned vs. an eager
//! execution, without threading a stats handle through every stage
//! signature.
//!
//! The tally is per-thread: the dataflow engine runs each task body on one
//! pool thread, so a task's stages never interleave with another task's on
//! the same tally.

use schedflow_dataflow::report::PlanStats;
use std::cell::RefCell;

thread_local! {
    static TALLY: RefCell<PlanStats> = RefCell::new(PlanStats::default());
}

/// Fold one plan execution's accounting into this thread's tally.
pub(crate) fn record(delta: &PlanStats) {
    TALLY.with(|t| t.borrow_mut().merge(delta));
}

/// Clear this thread's tally (call before a stage body).
pub fn reset() {
    TALLY.with(|t| *t.borrow_mut() = PlanStats::default());
}

/// This thread's accumulated plan accounting since the last [`reset`].
pub fn snapshot() -> PlanStats {
    TALLY.with(|t| t.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_is_per_thread() {
        reset();
        record(&PlanStats {
            plans: 1,
            rows_in: 10,
            ..PlanStats::default()
        });
        let handle = std::thread::spawn(|| snapshot().plans);
        assert_eq!(handle.join().unwrap(), 0, "other threads see a fresh tally");
        let here = snapshot();
        assert_eq!(here.plans, 1);
        assert_eq!(here.rows_in, 10);
        reset();
        assert_eq!(snapshot().plans, 0);
    }
}
