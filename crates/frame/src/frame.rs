//! The frame: an ordered set of equal-length named columns.

use crate::column::{Cell, Column, DType};
use schedflow_dataflow::contract::{ColType, ColumnSpec, FrameSchema};
use serde::{Deserialize, Serialize};

impl From<DType> for ColType {
    fn from(d: DType) -> Self {
        match d {
            DType::Int => ColType::Int,
            DType::Float => ColType::Float,
            DType::Str => ColType::Str,
            DType::Bool => ColType::Bool,
        }
    }
}

/// Errors raised by frame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    LengthMismatch {
        column: String,
        expected: usize,
        got: usize,
    },
    DuplicateColumn(String),
    NoSuchColumn(String),
    TypeMismatch {
        column: String,
        expected: DType,
        got: DType,
    },
    /// A logical plan could not execute (bad source binding, mixed-type
    /// expression output) — see [`crate::plan`].
    Plan(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LengthMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} has {got} rows, frame has {expected}"),
            FrameError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            FrameError::NoSuchColumn(c) => write!(f, "no such column {c:?}"),
            FrameError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} is {got}, expected {expected}"),
            FrameError::Plan(msg) => write!(f, "plan error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A columnar table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Frame {
    columns: Vec<(String, Column)>,
}

impl Frame {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows (0 for an empty frame).
    pub fn height(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.height() == 0
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Append a column; must match the frame's height (unless empty).
    pub fn add_column(&mut self, name: &str, column: Column) -> Result<(), FrameError> {
        if self.columns.iter().any(|(n, _)| n == name) {
            return Err(FrameError::DuplicateColumn(name.to_owned()));
        }
        if !self.columns.is_empty() && column.len() != self.height() {
            return Err(FrameError::LengthMismatch {
                column: name.to_owned(),
                expected: self.height(),
                got: column.len(),
            });
        }
        self.columns.push((name.to_owned(), column));
        Ok(())
    }

    /// Builder-style [`Frame::add_column`], panicking on error — for literals
    /// in tests and generators where shapes are static.
    pub fn with(mut self, name: &str, column: Column) -> Self {
        match self.add_column(name, column) {
            Ok(()) => self,
            Err(e) => panic!("Frame::with({name:?}): {e}"),
        }
    }

    /// The frame's schema as a static-analysis [`FrameSchema`]: one spec per
    /// column, in order; a column is nullable when it currently holds nulls.
    pub fn schema(&self) -> FrameSchema {
        let mut schema = FrameSchema::new();
        for (name, col) in &self.columns {
            let mut spec = ColumnSpec::new(name, col.dtype().into());
            if col.null_count() > 0 {
                spec = spec.nullable();
            }
            schema = schema.with_spec(spec);
        }
        schema
    }

    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_owned()))
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|(n, _)| n == name)
    }

    /// Typed accessors with dtype checking.
    pub fn i64(&self, name: &str) -> Result<&Column, FrameError> {
        self.typed(name, DType::Int)
    }

    pub fn f64(&self, name: &str) -> Result<&Column, FrameError> {
        self.typed(name, DType::Float)
    }

    pub fn str(&self, name: &str) -> Result<&Column, FrameError> {
        self.typed(name, DType::Str)
    }

    pub fn bool(&self, name: &str) -> Result<&Column, FrameError> {
        self.typed(name, DType::Bool)
    }

    fn typed(&self, name: &str, dtype: DType) -> Result<&Column, FrameError> {
        let c = self.column(name)?;
        if c.dtype() != dtype {
            return Err(FrameError::TypeMismatch {
                column: name.to_owned(),
                expected: dtype,
                got: c.dtype(),
            });
        }
        Ok(c)
    }

    /// Project onto the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Frame, FrameError> {
        let mut out = Frame::new();
        for &n in names {
            out.add_column(n, self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// Drop the named column (no-op error if absent).
    pub fn drop_column(&mut self, name: &str) -> Result<Column, FrameError> {
        let pos = self
            .columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_owned()))?;
        Ok(self.columns.remove(pos).1)
    }

    /// Keep rows where `mask` is true (applied to every column).
    pub fn filter(&self, mask: &[bool]) -> Result<Frame, FrameError> {
        if mask.len() != self.height() {
            return Err(FrameError::LengthMismatch {
                column: "<mask>".to_owned(),
                expected: self.height(),
                got: mask.len(),
            });
        }
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.filter(mask)))
            .collect();
        Ok(Frame { columns })
    }

    /// Reorder/select rows by index.
    pub fn take(&self, indices: &[usize]) -> Frame {
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.take(indices)))
            .collect();
        Frame { columns }
    }

    /// First `n` rows — a zero-copy window over shared chunks, O(chunks).
    pub fn head(&self, n: usize) -> Frame {
        self.slice(0, n.min(self.height()))
    }

    /// Rows `[offset, offset + len)` as zero-copy chunk windows.
    pub fn slice(&self, offset: usize, len: usize) -> Frame {
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.slice(offset, len)))
            .collect();
        Frame { columns }
    }

    /// Materialize every column into one fresh contiguous chunk (copies all
    /// rows; the explicit opposite of the zero-copy path).
    pub fn compact(&self) -> Frame {
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.compact()))
            .collect();
        Frame { columns }
    }

    /// Cell at `(row, column)`.
    pub fn cell(&self, row: usize, name: &str) -> Result<Cell, FrameError> {
        Ok(self.column(name)?.cell(row))
    }

    /// Vertically concatenate frames with identical schemas.
    ///
    /// Zero-copy: each output column is the concatenation of the inputs'
    /// chunk lists — O(chunks) pointer work, no row copies. The inputs keep
    /// sharing their buffers with the result.
    pub fn vstack(frames: &[Frame]) -> Result<Frame, FrameError> {
        let nonempty: Vec<&Frame> = frames.iter().filter(|f| f.width() > 0).collect();
        let Some(first) = nonempty.first() else {
            return Ok(Frame::new());
        };
        for f in &nonempty[1..] {
            if f.column_names() != first.column_names() {
                return Err(FrameError::NoSuchColumn(format!(
                    "schema mismatch: {:?} vs {:?}",
                    first.column_names(),
                    f.column_names()
                )));
            }
            for (i, (name, col)) in first.columns.iter().enumerate() {
                let other = &f.columns[i].1;
                if other.dtype() != col.dtype() {
                    return Err(FrameError::TypeMismatch {
                        column: name.clone(),
                        expected: col.dtype(),
                        got: other.dtype(),
                    });
                }
            }
        }
        let columns = first
            .columns
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                let parts: Vec<&Column> = nonempty.iter().map(|f| &f.columns[i].1).collect();
                (name.clone(), Column::concat(&parts))
            })
            .collect();
        Ok(Frame { columns })
    }

    /// Argsort by one column ascending/descending (nulls last), stable.
    pub fn sort_indices(&self, by: &str, descending: bool) -> Result<Vec<usize>, FrameError> {
        let col = self.column(by)?;
        let mut idx: Vec<usize> = (0..self.height()).collect();
        match col.dtype() {
            DType::Int | DType::Bool => {
                idx.sort_by_key(|&i| match col.get_i64(i) {
                    Some(v) => (false, if descending { -v } else { v }),
                    None => (true, 0),
                });
            }
            DType::Float => {
                idx.sort_by(|&a, &b| {
                    let ka = col.get_f64(a);
                    let kb = col.get_f64(b);
                    match (ka, kb) {
                        (Some(x), Some(y)) => {
                            let ord = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
                            if descending {
                                ord.reverse()
                            } else {
                                ord
                            }
                        }
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    }
                });
            }
            DType::Str => {
                idx.sort_by(|&a, &b| {
                    let ord = match (col.get_str(a), col.get_str(b)) {
                        (Some(x), Some(y)) => x.cmp(y),
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    };
                    if descending {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
            }
        }
        Ok(idx)
    }

    /// Sorted copy.
    pub fn sort_by(&self, by: &str, descending: bool) -> Result<Frame, FrameError> {
        Ok(self.take(&self.sort_indices(by, descending)?))
    }

    /// Iterate `(name, column)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Estimated resident bytes across all columns (feeds the dataflow
    /// artifact accounting; windows over shared buffers count in full).
    pub fn estimated_bytes(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.estimated_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new()
            .with(
                "user",
                Column::from_str(vec!["a".into(), "b".into(), "a".into()]),
            )
            .with("wait", Column::from_i64(vec![10, 300, 25]))
            .with("ok", Column::from_bool(vec![true, false, true]))
    }

    #[test]
    fn shape_and_names() {
        let f = sample();
        assert_eq!(f.height(), 3);
        assert_eq!(f.width(), 3);
        assert_eq!(f.column_names(), vec!["user", "wait", "ok"]);
    }

    #[test]
    fn rejects_mismatched_lengths_and_duplicates() {
        let mut f = sample();
        assert!(matches!(
            f.add_column("bad", Column::from_i64(vec![1])),
            Err(FrameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            f.add_column("wait", Column::from_i64(vec![1, 2, 3])),
            Err(FrameError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn typed_accessors_check_dtype() {
        let f = sample();
        assert!(f.i64("wait").is_ok());
        assert!(matches!(
            f.i64("user"),
            Err(FrameError::TypeMismatch { .. })
        ));
        assert!(matches!(f.i64("nope"), Err(FrameError::NoSuchColumn(_))));
    }

    #[test]
    fn filter_by_mask() {
        let f = sample();
        let mask = f.i64("wait").unwrap().mask_f64(|w| w > 20.0);
        let g = f.filter(&mask).unwrap();
        assert_eq!(g.height(), 2);
        assert_eq!(g.str("user").unwrap().str_values(), &["b", "a"]);
    }

    #[test]
    fn select_projects_in_order() {
        let f = sample().select(&["ok", "user"]).unwrap();
        assert_eq!(f.column_names(), vec!["ok", "user"]);
    }

    #[test]
    fn sort_ascending_descending() {
        let f = sample();
        let asc = f.sort_by("wait", false).unwrap();
        assert_eq!(asc.i64("wait").unwrap().i64_values(), &[10, 25, 300]);
        let desc = f.sort_by("wait", true).unwrap();
        assert_eq!(desc.i64("wait").unwrap().i64_values(), &[300, 25, 10]);
    }

    #[test]
    fn sort_nulls_last() {
        let f = Frame::new().with("x", Column::from_opt_i64(vec![Some(5), None, Some(1)]));
        let s = f.sort_by("x", false).unwrap();
        assert_eq!(s.column("x").unwrap().get_i64(0), Some(1));
        assert_eq!(s.column("x").unwrap().get_i64(2), None);
    }

    #[test]
    fn sort_strings() {
        let f = sample().sort_by("user", false).unwrap();
        assert_eq!(f.str("user").unwrap().str_values(), &["a", "a", "b"]);
    }

    #[test]
    fn vstack_concatenates() {
        let f = sample();
        let g = Frame::vstack(&[f.clone(), f.clone()]).unwrap();
        assert_eq!(g.height(), 6);
        assert_eq!(g.width(), 3);
    }

    #[test]
    fn vstack_merges_validity() {
        let a = Frame::new().with("x", Column::from_opt_i64(vec![Some(1), None]));
        let b = Frame::new().with("x", Column::from_i64(vec![7]));
        let g = Frame::vstack(&[a, b]).unwrap();
        assert_eq!(g.height(), 3);
        assert_eq!(g.column("x").unwrap().get_i64(1), None);
        assert_eq!(g.column("x").unwrap().get_i64(2), Some(7));
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let a = sample();
        let b = sample().select(&["user", "wait"]).unwrap();
        assert!(Frame::vstack(&[a, b]).is_err());
    }

    #[test]
    fn head_truncates() {
        assert_eq!(sample().head(2).height(), 2);
        assert_eq!(sample().head(99).height(), 3);
    }

    #[test]
    fn head_is_a_zero_copy_view() {
        let f = Frame::vstack(&[sample(), sample()]).unwrap();
        crate::copycount::reset();
        let h = f.head(4);
        assert_eq!(
            crate::copycount::rows_copied(),
            0,
            "head must not materialize rows"
        );
        assert_eq!(h.height(), 4);
        assert_eq!(h.str("user").unwrap().get_str(3), Some("a"));
        assert_eq!(h.column("wait").unwrap().get_i64(3), Some(10));
    }

    #[test]
    fn vstack_performs_zero_row_copies() {
        let months: Vec<Frame> = (0..6).map(|_| sample()).collect();
        crate::copycount::reset();
        let merged = Frame::vstack(&months).unwrap();
        assert_eq!(
            crate::copycount::rows_copied(),
            0,
            "vstack must concatenate chunks, not rows"
        );
        assert_eq!(merged.height(), 18);
        assert_eq!(merged.column("wait").unwrap().num_chunks(), 6);
        // The merge shares buffers with the inputs and stays logically equal
        // to the eager single-chunk result.
        assert_eq!(merged, merged.compact());
    }

    #[test]
    fn slice_windows_share_chunks() {
        let f = Frame::vstack(&[sample(), sample()]).unwrap();
        crate::copycount::reset();
        let s = f.slice(2, 3);
        assert_eq!(crate::copycount::rows_copied(), 0);
        assert_eq!(s.height(), 3);
        assert_eq!(s.i64("wait").unwrap().get_i64(0), Some(25));
        assert_eq!(s.i64("wait").unwrap().get_i64(1), Some(10));
    }

    #[test]
    fn drop_column_removes() {
        let mut f = sample();
        f.drop_column("ok").unwrap();
        assert_eq!(f.width(), 2);
        assert!(f.drop_column("ok").is_err());
    }
}
