//! The typed expression tree of the logical-plan IR.
//!
//! Expressions are built from *typed column references* — [`col_i64`],
//! [`col_f64`], [`col_str`], [`col_bool`], [`col_num`] (either numeric
//! width), [`col_any`] (presence only) — so the plan itself records how each
//! column is consumed. [`crate::plan`] walks those references to derive a
//! stage's input contract instead of a hand-written schema.
//!
//! Evaluation is null-total with Kleene three-valued logic: any operand
//! being null makes comparisons and arithmetic null, `and`/`or` short-
//! circuit through nulls the SQL way (`false AND null = false`,
//! `true OR null = true`), and a [`Plan::Filter`](crate::plan::Plan) keeps
//! only rows whose predicate is *definitely* true. Because nulls can never
//! fault an expression, derived requirements mark every column nullable —
//! presence and dtype are the checked contract.

use crate::view::FrameView;
use schedflow_dataflow::contract::ColType;
use schedflow_dataflow::fnv::Fnv1a;
use std::fmt::Write as _;

/// A column reference with the type context it is consumed under.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    pub name: String,
    pub ty: ColType,
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operator. `Div` always evaluates in floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    fn token(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression over one row of a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Col(ColRef),
    LitI64(i64),
    LitF64(f64),
    LitStr(String),
    LitBool(bool),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
    /// String-set membership (`state IN ('FAILED', ...)`).
    InStr(Box<Expr>, Vec<String>),
}

/// Reference a column consumed as `int` (the frame dtype must be `Int`).
pub fn col_i64(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Int,
    })
}

/// Reference a column consumed as `float`.
pub fn col_f64(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Float,
    })
}

/// Reference a column consumed as a string.
pub fn col_str(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Str,
    })
}

/// Reference a column consumed as a boolean.
pub fn col_bool(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Bool,
    })
}

/// Reference a column consumed numerically — `int` or `float` both satisfy
/// the derived requirement ([`ColType::Num`]).
pub fn col_num(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Num,
    })
}

/// Reference a column whose presence is the only requirement (e.g. a
/// validity test on `start`).
pub fn col_any(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef {
        name: name.into(),
        ty: ColType::Any,
    })
}

/// Integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::LitI64(v)
}

/// Float literal.
pub fn lit_f64(v: f64) -> Expr {
    Expr::LitF64(v)
}

/// String literal.
pub fn lit_str(v: impl Into<String>) -> Expr {
    Expr::LitStr(v.into())
}

impl Expr {
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }

    pub fn in_str(self, set: &[&str]) -> Expr {
        Expr::InStr(
            Box::new(self),
            set.iter().map(|s| (*s).to_owned()).collect(),
        )
    }

    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Collect every column reference (pre-order, duplicates preserved).
    pub fn col_refs<'e>(&'e self, out: &mut Vec<&'e ColRef>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::LitI64(_) | Expr::LitF64(_) | Expr::LitStr(_) | Expr::LitBool(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.col_refs(out);
                b.col_refs(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::InStr(e, _) => {
                e.col_refs(out)
            }
        }
    }

    /// Stable textual rendering — the canonical sort key for conjunct
    /// ordering and the leaf encoding of plan fingerprints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self {
            Expr::Col(c) => {
                let _ = write!(s, "col({}:{})", c.name, c.ty);
            }
            Expr::LitI64(v) => {
                let _ = write!(s, "{v}i");
            }
            Expr::LitF64(v) => {
                // `{:?}` keeps a trailing `.0`, disambiguating from ints.
                let _ = write!(s, "{v:?}f");
            }
            Expr::LitStr(v) => {
                let _ = write!(s, "{v:?}");
            }
            Expr::LitBool(v) => {
                let _ = write!(s, "{v}");
            }
            Expr::Cmp(op, a, b) => {
                s.push('(');
                a.render_into(s);
                s.push_str(op.token());
                b.render_into(s);
                s.push(')');
            }
            Expr::Arith(op, a, b) => {
                s.push('(');
                a.render_into(s);
                s.push_str(op.token());
                b.render_into(s);
                s.push(')');
            }
            Expr::And(a, b) => {
                s.push('(');
                a.render_into(s);
                s.push_str(" & ");
                b.render_into(s);
                s.push(')');
            }
            Expr::Or(a, b) => {
                s.push('(');
                a.render_into(s);
                s.push_str(" | ");
                b.render_into(s);
                s.push(')');
            }
            Expr::Not(e) => {
                s.push('!');
                e.render_into(s);
            }
            Expr::IsNull(e) => {
                e.render_into(s);
                s.push_str(".is_null()");
            }
            Expr::IsNotNull(e) => {
                e.render_into(s);
                s.push_str(".is_not_null()");
            }
            Expr::InStr(e, set) => {
                e.render_into(s);
                let _ = write!(s, " in {set:?}");
            }
        }
    }

    /// Rebuild with `And`/`Or` conjunct chains flattened and sorted by
    /// rendered key, so `a & b` and `b & a` canonicalize identically.
    pub fn canonicalize(&self) -> Expr {
        match self {
            Expr::And(..) => Expr::rebuild_chain(self, true),
            Expr::Or(..) => Expr::rebuild_chain(self, false),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.canonicalize()), Box::new(b.canonicalize()))
            }
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.canonicalize()), Box::new(b.canonicalize()))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.canonicalize())),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.canonicalize())),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.canonicalize())),
            Expr::InStr(e, set) => Expr::InStr(Box::new(e.canonicalize()), set.clone()),
            leaf => leaf.clone(),
        }
    }

    fn rebuild_chain(root: &Expr, is_and: bool) -> Expr {
        let mut parts = Vec::new();
        Expr::flatten_chain(root, is_and, &mut parts);
        parts.sort_by_key(|e| e.render());
        let mut it = parts.into_iter();
        // An And/Or root always flattens to at least one operand; the
        // identity element covers the unreachable empty case.
        let first = match it.next() {
            Some(e) => e,
            None => return Expr::LitBool(is_and),
        };
        it.fold(first, |acc, e| if is_and { acc.and(e) } else { acc.or(e) })
    }

    fn flatten_chain(e: &Expr, is_and: bool, out: &mut Vec<Expr>) {
        match (e, is_and) {
            (Expr::And(a, b), true) | (Expr::Or(a, b), false) => {
                Expr::flatten_chain(a, is_and, out);
                Expr::flatten_chain(b, is_and, out);
            }
            _ => out.push(e.canonicalize()),
        }
    }

    /// Fold this expression's canonical form into a fingerprint hasher.
    pub fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.update_str(&self.canonicalize().render());
    }
}

/// A scalar value produced by evaluating an expression at one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'v> {
    Null,
    Int(i64),
    Float(f64),
    Str(&'v str),
    Bool(bool),
}

impl Value<'_> {
    fn as_f64(self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            Value::Bool(v) => Some(if v { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Kleene truth value: `Some(bool)` or null.
type Truth = Option<bool>;

/// Row-wise evaluator over a [`FrameView`]: resolves the expression's column
/// references once, then evaluates per row without re-looking anything up.
pub struct Evaluator<'v> {
    cols: Vec<(String, crate::view::ColumnView<'v>)>,
}

impl<'v> Evaluator<'v> {
    /// Bind `expr`'s columns against `view`. Fails on a missing column or a
    /// reference whose concrete dtype cannot satisfy its typed context.
    pub fn bind(expr: &Expr, view: &'v FrameView<'v>) -> Result<Self, crate::frame::FrameError> {
        let mut refs = Vec::new();
        expr.col_refs(&mut refs);
        let mut cols: Vec<(String, crate::view::ColumnView<'v>)> = Vec::new();
        for r in refs {
            if cols.iter().any(|(n, _)| *n == r.name) {
                continue;
            }
            let cv = match r.ty {
                ColType::Int => view.i64(&r.name)?,
                ColType::Float => view.f64(&r.name)?,
                ColType::Str => view.str(&r.name)?,
                ColType::Bool => view.bool(&r.name)?,
                ColType::Num => {
                    let cv = view.column(&r.name)?;
                    match cv.dtype() {
                        crate::column::DType::Int | crate::column::DType::Float => cv,
                        got => {
                            return Err(crate::frame::FrameError::TypeMismatch {
                                column: r.name.clone(),
                                expected: crate::column::DType::Float,
                                got,
                            })
                        }
                    }
                }
                ColType::Any => view.column(&r.name)?,
            };
            cols.push((r.name.clone(), cv));
        }
        Ok(Evaluator { cols })
    }

    // Every reference is resolved in `bind`; plans only evaluate
    // expressions they bound, so the lookup cannot miss.
    #[allow(clippy::expect_used)]
    fn col(&self, name: &str) -> &crate::view::ColumnView<'v> {
        &self
            .cols
            .iter()
            .find(|(n, _)| n == name)
            .expect("column bound")
            .1
    }

    /// Evaluate `expr` at view row `i`. The returned value borrows from
    /// whichever of the view or the expression (string literals) is shorter-
    /// lived.
    pub fn eval<'e>(&'e self, expr: &'e Expr, i: usize) -> Value<'e> {
        match expr {
            Expr::Col(r) => {
                let cv = self.col(&r.name);
                if !cv.is_valid(i) {
                    return Value::Null;
                }
                match cv.dtype() {
                    crate::column::DType::Int => cv.get_i64(i).map_or(Value::Null, Value::Int),
                    crate::column::DType::Float => cv.get_f64(i).map_or(Value::Null, Value::Float),
                    crate::column::DType::Str => cv.get_str(i).map_or(Value::Null, Value::Str),
                    crate::column::DType::Bool => {
                        cv.get_i64(i).map_or(Value::Null, |v| Value::Bool(v != 0))
                    }
                }
            }
            Expr::LitI64(v) => Value::Int(*v),
            Expr::LitF64(v) => Value::Float(*v),
            Expr::LitStr(v) => Value::Str(v),
            Expr::LitBool(v) => Value::Bool(*v),
            Expr::Cmp(op, a, b) => truth_value(self.cmp(*op, self.eval(a, i), self.eval(b, i))),
            Expr::Arith(op, a, b) => self.arith(*op, self.eval(a, i), self.eval(b, i)),
            Expr::And(a, b) => {
                let l = self.truth(a, i);
                if l == Some(false) {
                    return Value::Bool(false);
                }
                let r = self.truth(b, i);
                truth_value(match (l, r) {
                    (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            Expr::Or(a, b) => {
                let l = self.truth(a, i);
                if l == Some(true) {
                    return Value::Bool(true);
                }
                let r = self.truth(b, i);
                truth_value(match (l, r) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            Expr::Not(e) => truth_value(self.truth(e, i).map(|b| !b)),
            Expr::IsNull(e) => Value::Bool(self.eval(e, i) == Value::Null),
            Expr::IsNotNull(e) => Value::Bool(self.eval(e, i) != Value::Null),
            Expr::InStr(e, set) => match self.eval(e, i) {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Bool(set.iter().any(|x| x == s)),
                _ => Value::Null,
            },
        }
    }

    /// Evaluate as a Kleene truth value.
    pub fn truth(&self, expr: &Expr, i: usize) -> Truth {
        match self.eval(expr, i) {
            Value::Bool(b) => Some(b),
            Value::Int(v) => Some(v != 0),
            _ => None,
        }
    }

    fn cmp(&self, op: CmpOp, a: Value<'_>, b: Value<'_>) -> Truth {
        use std::cmp::Ordering;
        let ord = match (a, b) {
            (Value::Null, _) | (_, Value::Null) => return None,
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            (x, y) => {
                let (Some(x), Some(y)) = (x.as_f64(), y.as_f64()) else {
                    return None; // str vs numeric: incomparable, null
                };
                x.partial_cmp(&y)?
            }
        };
        Some(match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        })
    }

    fn arith<'e>(&self, op: ArithOp, a: Value<'e>, b: Value<'e>) -> Value<'e> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) if op != ArithOp::Div => Value::Int(match op {
                ArithOp::Add => x.wrapping_add(y),
                ArithOp::Sub => x.wrapping_sub(y),
                ArithOp::Mul => x.wrapping_mul(y),
                ArithOp::Div => unreachable!(),
            }),
            (x, y) => match (x.as_f64(), y.as_f64()) {
                (Some(x), Some(y)) => Value::Float(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                }),
                _ => Value::Null,
            },
        }
    }

    /// Boolean mask over the view: true where the predicate is definitely
    /// true (Kleene: null is not kept).
    pub fn mask(&self, expr: &Expr, height: usize) -> Vec<bool> {
        (0..height)
            .map(|i| self.truth(expr, i) == Some(true))
            .collect()
    }
}

fn truth_value<'v>(t: Truth) -> Value<'v> {
    t.map_or(Value::Null, Value::Bool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::frame::Frame;

    fn frame() -> Frame {
        Frame::new()
            .with("n", Column::from_opt_i64(vec![Some(1), Some(5), None]))
            .with("x", Column::from_f64(vec![0.5, 2.5, 9.0]))
            .with(
                "s",
                Column::from_str(vec!["a".into(), "b".into(), "a".into()]),
            )
    }

    #[test]
    fn kleene_null_semantics() {
        let f = frame();
        let v = f.view();
        let pred = col_num("n").gt(lit_i64(2));
        let ev = Evaluator::bind(&pred, &v).unwrap();
        assert_eq!(ev.truth(&pred, 0), Some(false));
        assert_eq!(ev.truth(&pred, 1), Some(true));
        assert_eq!(ev.truth(&pred, 2), None, "null comparison is null");

        // false AND null = false; true OR null = true.
        let and = col_num("n").gt(lit_i64(100)).and(col_num("n").is_null());
        let ev = Evaluator::bind(&and, &v).unwrap();
        assert_eq!(ev.truth(&and, 2), None, "null > 100 is null, null AND x");
        let and2 = lit_i64(0).gt(lit_i64(1)).and(col_num("n").gt(lit_i64(0)));
        let ev = Evaluator::bind(&and2, &v).unwrap();
        assert_eq!(ev.truth(&and2, 2), Some(false), "false AND null = false");
        let or = lit_i64(1).gt(lit_i64(0)).or(col_num("n").gt(lit_i64(0)));
        let ev = Evaluator::bind(&or, &v).unwrap();
        assert_eq!(ev.truth(&or, 2), Some(true), "true OR null = true");
    }

    #[test]
    fn masks_keep_only_definite_true() {
        let f = frame();
        let v = f.view();
        let pred = col_num("n").ge(lit_i64(1));
        let ev = Evaluator::bind(&pred, &v).unwrap();
        assert_eq!(ev.mask(&pred, v.height()), vec![true, true, false]);
    }

    #[test]
    fn string_membership_and_equality() {
        let f = frame();
        let v = f.view();
        let e = col_str("s").in_str(&["a", "z"]);
        let ev = Evaluator::bind(&e, &v).unwrap();
        assert_eq!(ev.mask(&e, 3), vec![true, false, true]);
        let e = col_str("s").eq(lit_str("b"));
        let ev = Evaluator::bind(&e, &v).unwrap();
        assert_eq!(ev.mask(&e, 3), vec![false, true, false]);
    }

    #[test]
    fn arithmetic_promotes_and_propagates_null() {
        let f = frame();
        let v = f.view();
        let e = col_num("n").add(col_num("x"));
        let ev = Evaluator::bind(&e, &v).unwrap();
        assert_eq!(ev.eval(&e, 0), Value::Float(1.5));
        assert_eq!(ev.eval(&e, 2), Value::Null);
        let int = col_num("n").mul(lit_i64(3));
        let ev = Evaluator::bind(&int, &v).unwrap();
        assert_eq!(ev.eval(&int, 1), Value::Int(15), "int×int stays int");
        let div = col_num("n").div(lit_i64(2));
        let ev = Evaluator::bind(&div, &v).unwrap();
        assert_eq!(ev.eval(&div, 0), Value::Float(0.5), "div is float");
    }

    #[test]
    fn typed_binding_enforces_dtype() {
        let f = frame();
        let v = f.view();
        let e = col_i64("x").gt(lit_i64(0));
        assert!(Evaluator::bind(&e, &v).is_err(), "x is float, not int");
        let e = col_num("s").gt(lit_i64(0));
        assert!(Evaluator::bind(&e, &v).is_err(), "s is not numeric");
    }

    #[test]
    fn canonicalization_sorts_conjuncts() {
        let a = col_num("n").gt(lit_i64(0));
        let b = col_str("s").eq(lit_str("a"));
        let c = col_num("x").lt(lit_f64(5.0));
        let p1 = a.clone().and(b.clone()).and(c.clone());
        let p2 = c.and(a).and(b);
        assert_eq!(p1.canonicalize().render(), p2.canonicalize().render());
    }

    #[test]
    fn render_distinguishes_literal_kinds() {
        assert_ne!(lit_i64(1).render(), lit_f64(1.0).render());
        assert_ne!(lit_str("1").render(), lit_i64(1).render());
    }
}
