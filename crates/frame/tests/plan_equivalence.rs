//! Property suite for the logical-plan optimizer: on arbitrary frames and
//! arbitrary well-formed plans, the optimized execution (fused, pushed-down,
//! pruned, memoized) must produce exactly the frame the eager unoptimized
//! interpreter produces, and plan fingerprints must be stable and
//! insensitive to conjunct order and to filter splitting.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use schedflow_frame::{col_i64, col_num, col_str, lit_i64, Agg, Column, Frame, JoinKind, LazyPlan};

const STATES: [&str; 3] = ["COMPLETED", "FAILED", "CANCELLED"];

/// One curated-frame-shaped table: ints, nullable ints, and strings, split
/// into 1–3 chunks so the zero-copy path crosses chunk boundaries.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(2023i64..2026, n),
            proptest::collection::vec(proptest::option::of(0i64..1000), n),
            proptest::collection::vec(0usize..3, n),
            proptest::collection::vec(0usize..4, n),
            proptest::collection::vec(1i64..65, n),
            1usize..4,
        )
            .prop_map(move |(years, waits, states, users, nodes, chunks)| {
                let whole = Frame::new()
                    .with("year", Column::from_i64(years))
                    .with("wait_s", Column::from_opt_i64(waits))
                    .with(
                        "state",
                        Column::from_str(states.iter().map(|&i| STATES[i].to_owned()).collect()),
                    )
                    .with(
                        "user",
                        Column::from_str(users.iter().map(|&i| format!("u{i}")).collect()),
                    )
                    .with("nnodes", Column::from_i64(nodes));
                let chunks = chunks.min(n);
                if chunks <= 1 {
                    return whole;
                }
                let per = n / chunks;
                let parts: Vec<Frame> = (0..chunks)
                    .map(|i| {
                        let lo = i * per;
                        let len = if i == chunks - 1 { n - lo } else { per };
                        whole.slice(lo, len)
                    })
                    .collect();
                Frame::vstack(&parts).unwrap()
            })
    })
}

/// A well-formed plan over [`arb_frame`]'s schema: a pipeline of filters,
/// then either a group-by tail or a project/sort/head tail — so every node
/// only references columns its input still carries.
#[derive(Clone, Debug)]
struct PlanSpec {
    filters: Vec<FilterOp>,
    tail: Tail,
}

#[derive(Clone, Debug)]
enum FilterOp {
    WaitOver(i64),
    StateIs(usize),
    YearIs(i64),
}

#[derive(Clone, Debug)]
enum Tail {
    None,
    GroupByUser {
        sort_jobs: bool,
    },
    Project {
        sort_wait: Option<bool>,
        head: Option<usize>,
    },
}

fn arb_spec() -> impl Strategy<Value = PlanSpec> {
    let filter = prop_oneof![
        (0i64..800).prop_map(FilterOp::WaitOver),
        (0usize..3).prop_map(FilterOp::StateIs),
        (2023i64..2026).prop_map(FilterOp::YearIs),
    ];
    let tail = prop_oneof![
        Just(Tail::None),
        any::<bool>().prop_map(|sort_jobs| Tail::GroupByUser { sort_jobs }),
        (
            proptest::option::of(any::<bool>()),
            proptest::option::of(1usize..20)
        )
            .prop_map(|(sort_wait, head)| Tail::Project { sort_wait, head }),
    ];
    (proptest::collection::vec(filter, 0..4), tail)
        .prop_map(|(filters, tail)| PlanSpec { filters, tail })
}

fn build_plan(spec: &PlanSpec) -> LazyPlan {
    let mut plan = LazyPlan::scan();
    for f in &spec.filters {
        plan = match f {
            FilterOp::WaitOver(k) => plan.filter(col_num("wait_s").gt(lit_i64(*k))),
            FilterOp::StateIs(i) => plan.filter(col_str("state").in_str(&[STATES[*i]])),
            FilterOp::YearIs(y) => plan.filter(col_i64("year").eq(lit_i64(*y))),
        };
    }
    match &spec.tail {
        Tail::None => plan,
        Tail::GroupByUser { sort_jobs } => {
            let g = plan.group_by(
                &["user"],
                &[
                    ("jobs", Agg::Count),
                    ("mean_wait", Agg::Mean("wait_s".into())),
                ],
            );
            if *sort_jobs {
                g.sort("jobs", true)
            } else {
                g
            }
        }
        Tail::Project { sort_wait, head } => {
            let mut p = plan.project(&[col_i64("year"), col_num("wait_s")]);
            if let Some(desc) = sort_wait {
                p = p.sort("wait_s", *desc);
            }
            if let Some(n) = head {
                p = p.head(*n);
            }
            p
        }
    }
}

proptest! {
    /// The optimizer is semantics-preserving: fused/pushed/pruned/memoized
    /// execution equals the eager unoptimized interpreter, frame for frame.
    #[test]
    fn prop_optimized_equals_eager(frame in arb_frame(), spec in arb_spec()) {
        let plan = build_plan(&spec);
        let optimized = plan.execute(&frame).unwrap();
        let eager = plan.execute_eager(&frame).unwrap();
        prop_assert_eq!(optimized, eager);
    }

    /// The zero-copy output path materializes to the same frame too.
    #[test]
    fn prop_view_output_equals_eager(frame in arb_frame(), spec in arb_spec()) {
        let plan = build_plan(&spec);
        let via_view = plan.execute_view(&frame).unwrap().materialize().unwrap();
        let eager = plan.execute_eager(&frame).unwrap();
        prop_assert_eq!(via_view, eager);
    }

    /// Fingerprints are stable across calls and blind to conjunct order.
    #[test]
    fn prop_fingerprint_conjunct_order_insensitive(a in 0i64..1000, y in 2023i64..2026) {
        let ab = LazyPlan::scan().filter(
            col_num("wait_s").gt(lit_i64(a)).and(col_i64("year").eq(lit_i64(y))),
        );
        let ba = LazyPlan::scan().filter(
            col_i64("year").eq(lit_i64(y)).and(col_num("wait_s").gt(lit_i64(a))),
        );
        prop_assert_eq!(ab.fingerprint(), ab.fingerprint());
        prop_assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    /// Splitting a conjunction into chained filters fingerprints like the
    /// fused form: the optimizer normalizes both to the same pushed scan.
    #[test]
    fn prop_fingerprint_filter_split_insensitive(a in 0i64..1000, y in 2023i64..2026) {
        let fused = LazyPlan::scan().filter(
            col_num("wait_s").gt(lit_i64(a)).and(col_i64("year").eq(lit_i64(y))),
        );
        let split = LazyPlan::scan()
            .filter(col_num("wait_s").gt(lit_i64(a)))
            .filter(col_i64("year").eq(lit_i64(y)));
        prop_assert_eq!(fused.fingerprint(), split.fingerprint());
    }

    /// Literals are part of the identity: a different constant must change
    /// the fingerprint (the checkpoint key for a changed stage).
    #[test]
    fn prop_fingerprint_sensitive_to_literals(a in 0i64..1000, b in 0i64..1000) {
        prop_assume!(a != b);
        let fp = |k: i64| {
            LazyPlan::scan()
                .filter(col_num("wait_s").gt(lit_i64(k)))
                .fingerprint()
        };
        prop_assert_ne!(fp(a), fp(b));
    }

    /// A join of identical aggregation subplans over two sources (the
    /// federation shape) equals the eager twice-computed join.
    #[test]
    fn prop_join_preserves_semantics(frame in arb_frame()) {
        let per_user = || {
            LazyPlan::scan().group_by(
                &["user"],
                &[("jobs", Agg::Count), ("mean_wait", Agg::Mean("wait_s".into()))],
            )
        };
        let plan = per_user().join(per_user(), "user", JoinKind::Inner);
        let optimized = plan.execute_multi(&[&frame, &frame]).unwrap();
        let eager = plan.execute_eager_multi(&[&frame, &frame]).unwrap();
        prop_assert_eq!(optimized, eager);
    }
}
