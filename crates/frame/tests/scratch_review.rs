use schedflow_frame::cost::analyze;
use schedflow_frame::expr::col_str;
use schedflow_frame::{Agg, Column, Frame, JoinKind, LazyPlan};

#[test]
fn multikey_groupby_join_soundness() {
    // left: group_by(user, day) -> unique on (user, day), NOT on user alone
    let left = LazyPlan::scan().group_by(&["user", "day"], &[("n", Agg::Count)]);
    let plan = left.join(LazyPlan::scan(), "user", JoinKind::Inner);
    let a = analyze(&plan);
    println!("unbounded_joins: {:?}", a.unbounded_joins);
    println!("rows_hi: {}", a.estimate.rows_hi.render());

    let lf = Frame::new()
        .with("user", Column::from_str(vec!["a".into(); 4]))
        .with("day", Column::from_i64(vec![1, 2, 3, 4]));
    let rf = Frame::new().with("user", Column::from_str(vec!["a".into(); 4]));
    let out = plan.execute_multi(&[&lf, &rf]).unwrap();
    let n = (lf.height() + rf.height()) as u64;
    let (lo, hi) = a.estimate.rows_interval(n);
    println!("n={} actual={} predicted=[{},{}]", n, out.height(), lo, hi);
    assert!(
        a.estimate.contains_rows(n, out.height() as u64),
        "UNSOUND: actual {} outside [{}, {}]",
        out.height(),
        lo,
        hi
    );
    let _ = col_str("x");
}
