#!/usr/bin/env bash
# Tier-1 verification: build, test, and lint the whole workspace.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke: bench_frame --test"
cargo run --release -p schedflow-bench --bin bench_frame -- --test

echo "==> schedflow lint (default frontier pipeline must be clean)"
cargo run --release -p schedflow-core --bin schedflow -- lint

echo "verify: OK"
