#!/usr/bin/env bash
# Tier-1 verification: build, test, and lint the whole workspace.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke: bench_frame --test"
cargo run --release -p schedflow-bench --bin bench_frame -- --test

echo "==> bench smoke: bench_plan --test (optimizer vs eager, digests must match)"
cargo run --release -p schedflow-bench --bin bench_plan -- --test

echo "==> schedflow lint (default frontier pipeline must be clean)"
cargo run --release -p schedflow-core --bin schedflow -- lint

echo "==> schedflow lint --format sarif (output must be shaped like SARIF 2.1.0)"
SARIF_OUT="$(cargo run --release -p schedflow-core --bin schedflow -- lint --format sarif)"
if command -v python3 >/dev/null 2>&1; then
    printf '%s' "$SARIF_OUT" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["version"] == "2.1.0", doc["version"]
assert "sarif-schema-2.1.0" in doc["$schema"], doc["$schema"]
runs = doc["runs"]
assert runs and runs[0]["tool"]["driver"]["name"] == "schedflow-lint"
assert isinstance(runs[0]["results"], list)
print("sarif: valid shape, %d result(s)" % len(runs[0]["results"]))
'
else
    for needle in '"$schema"' '"version": "2.1.0"' '"runs"' '"schedflow-lint"'; do
        printf '%s' "$SARIF_OUT" | grep -qF "$needle" \
            || { echo "verify: SARIF output missing $needle"; exit 1; }
    done
    echo "sarif: valid shape (grep fallback — no python3)"
fi

echo "==> estimate soundness: repro_soundness (static intervals vs actual rows, 1 and 4 threads)"
cargo run --release -p schedflow-bench --bin repro_soundness

echo "==> policy soundness: repro_policy (SF09xx verdicts vs witness replay, 1 and 4 threads)"
cargo run --release -p schedflow-bench --bin repro_policy

echo "==> policy negative smoke: inert age + no backfill must fail lint with SF0902"
if POLICY_OUT="$(cargo run --release -p schedflow-core --bin schedflow -- \
    lint --age-weight 0 --backfill none --deny)"; then
    echo "verify: broken policy passed lint --deny"; exit 1
fi
printf '%s' "$POLICY_OUT" | grep -qF "SF0902" \
    || { echo "verify: broken-policy lint output lacks SF0902"; exit 1; }
echo "policy smoke: SF0902 emitted and --deny exited nonzero"

echo "==> crash-recovery smoke: die at store write 7 under I/O chaos, resume, diff digests"
CRASH_TMP="$(mktemp -d)"
trap 'rm -rf "$CRASH_TMP"' EXIT
cargo run --release -p schedflow-core --bin schedflow -- verify-crash \
    --system andes --from 2024-01 --to 2024-02 --scale 0.02 \
    --cache "$CRASH_TMP/cache" --data "$CRASH_TMP/data" \
    --io-torn-p 0.3 --chaos-seed 9 --crash-after 7 \
    --retries 8 --retry-delay 1

echo "==> trace contract: repro_trace (critical path ≤ wall ≤ Σ tasks, 1-vs-4-thread digests, < 3% overhead)"
cargo run --release -p schedflow-bench --bin repro_trace

echo "==> trace export smoke: --trace-out must emit Chrome trace-event JSON"
cargo run --release -p schedflow-core --bin schedflow -- run \
    --system andes --from 2024-01 --to 2024-02 --scale 0.02 \
    --cache "$CRASH_TMP/tcache" --data "$CRASH_TMP/tdata" \
    --trace-out "$CRASH_TMP/trace.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$CRASH_TMP/trace.json" <<'PYEOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty array"
last = -1.0
for e in events:
    for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
        assert key in e, "event missing %r" % key
    assert e["ph"] == "X", e["ph"]
    assert e["ts"] >= last, "ts must be monotone"
    last = e["ts"]
print("trace: valid shape, %d event(s), monotone ts" % len(events))
PYEOF
else
    for needle in '"ph"' '"ts"' '"dur"' '"pid"' '"tid"' '"name"' '"args"'; do
        grep -qF "$needle" "$CRASH_TMP/trace.json" \
            || { echo "verify: trace JSON missing $needle"; exit 1; }
    done
    echo "trace: valid shape (grep fallback — no python3)"
fi
cargo run --release -p schedflow-core --bin schedflow -- trace "$CRASH_TMP/tdata" \
    | grep -qF "critical path" \
    || { echo "verify: schedflow trace summary lacks a critical path"; exit 1; }
echo "trace smoke: export + summary OK"

# Opt-in deep checking of the concurrency layer. Both stages need optional
# toolchain pieces, so they skip gracefully when those are absent.
if [ "${SCHEDFLOW_SANITIZE:-0}" = "1" ]; then
    echo "==> ThreadSanitizer: cargo +nightly test -p schedflow-dataflow"
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        RUSTFLAGS="-Z sanitizer=thread" RUSTDOCFLAGS="-Z sanitizer=thread" \
            cargo +nightly test -p schedflow-dataflow --lib \
            -Z build-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
            || { echo "verify: TSan stage FAILED"; exit 1; }
    else
        echo "==> skipped: no nightly toolchain (rustup run nightly failed)"
    fi
fi

if [ "${SCHEDFLOW_SANITIZE:-0}" = "1" ] || [ "${SCHEDFLOW_MIRI:-0}" = "1" ]; then
    echo "==> Miri: cargo miri test -p schedflow-dataflow -p schedflow-sim"
    if cargo miri --version >/dev/null 2>&1; then
        cargo miri test -p schedflow-dataflow -p schedflow-sim \
            || { echo "verify: Miri stage FAILED"; exit 1; }
    else
        echo "==> skipped: miri component unavailable (rustup component add miri)"
    fi
fi

echo "verify: OK"
